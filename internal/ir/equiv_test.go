package ir_test

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"ferrum/internal/ir"
	"ferrum/internal/irpass"
	"ferrum/internal/rodinia"
)

// The decode stage (slot numbering, block/func indices, pooled frames) is
// pure representation. This file keeps a small name-keyed reference
// interpreter — the pre-decode execution model, written against the
// exported IR API — and runs every Rodinia cell × {raw, eddi} on both
// engines, requiring identical results for golden and fault-injected runs.
// Part of the PR equivalence gate (go test -run 'Equiv|Snapshot').

const equivMemSize = 1 << 20
const equivMaxSteps = 1 << 20

// refInterp is the name-keyed reference engine: env maps per frame, branch
// targets resolved through name lookups per dynamic instruction.
type refInterp struct {
	mod      *ir.Module
	memImage []byte
	mem      []byte
	blocks   map[*ir.Func]map[string]*ir.Block

	frames   []*refFrame
	sp       uint64
	output   []uint64
	steps    uint64
	maxSteps uint64
	sites    uint64
	fault    *ir.Fault
	injected bool
	injStep  uint64
}

type refFrame struct {
	fn      *ir.Func
	block   *ir.Block
	idx     int
	env     map[string]uint64
	savedSP uint64
}

func newRefInterp(mod *ir.Module, memSize int) *refInterp {
	r := &refInterp{
		mod:      mod,
		memImage: make([]byte, memSize),
		mem:      make([]byte, memSize),
		blocks:   make(map[*ir.Func]map[string]*ir.Block, len(mod.Funcs)),
	}
	for _, f := range mod.Funcs {
		bs := make(map[string]*ir.Block, len(f.Blocks))
		for _, b := range f.Blocks {
			bs[b.Name] = b
		}
		r.blocks[f] = bs
	}
	return r
}

func (r *refInterp) SetMemImage(addr uint64, data []byte) error {
	copy(r.memImage[addr:], data)
	return nil
}

func (r *refInterp) WriteWordImage(addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return r.SetMemImage(addr, b[:])
}

type refCrash struct{ msg string }

func (e refCrash) Error() string { return e.msg }

var errRefDetected = fmt.Errorf("ref: detected")
var errRefHang = fmt.Errorf("ref: hang")

func (r *refInterp) run(opts ir.RunOpts) ir.RunResult {
	copy(r.mem, r.memImage)
	r.sp = uint64(len(r.mem))
	r.output = r.output[:0]
	r.steps, r.sites = 0, 0
	r.injected = false
	r.injStep = 0
	r.fault = opts.Fault
	r.maxSteps = opts.MaxSteps
	if r.maxSteps == 0 {
		r.maxSteps = ir.DefaultMaxSteps
	}
	entry := r.mod.Func(r.mod.Entry)
	env := map[string]uint64{}
	for i, p := range entry.Params {
		if i < len(opts.Args) {
			env[p.Name] = opts.Args[i]
		}
	}
	r.frames = []*refFrame{{fn: entry, block: entry.Blocks[0], env: env, savedSP: r.sp}}

	err := r.loop()
	res := ir.RunResult{
		Output:    append([]uint64(nil), r.output...),
		Steps:     r.steps,
		Sites:     r.sites,
		Injected:  r.injected,
		FaultStep: r.injStep,
	}
	switch e := err.(type) {
	case nil:
		res.Outcome = ir.OutcomeOK
	case refCrash:
		res.Outcome = ir.OutcomeCrash
		res.CrashMsg = e.msg
	default:
		switch err {
		case errRefDetected:
			res.Outcome = ir.OutcomeDetected
		default:
			res.Outcome = ir.OutcomeHang
		}
	}
	return res
}

func (r *refInterp) loop() error {
	for {
		fr := r.frames[len(r.frames)-1]
		if fr.idx >= len(fr.block.Insts) {
			return refCrash{fmt.Sprintf("@%s/%s: fell off block end", fr.fn.Name, fr.block.Name)}
		}
		in := fr.block.Insts[fr.idx]
		r.steps++
		if r.steps > r.maxSteps {
			return errRefHang
		}
		switch in.Op {
		case ir.OpBr:
			fr.block, fr.idx = r.blocks[fr.fn][in.Targets[0]], 0
			continue
		case ir.OpCondBr:
			t := in.Targets[1]
			if r.eval(in.Args[0], fr.env) != 0 {
				t = in.Targets[0]
			}
			fr.block, fr.idx = r.blocks[fr.fn][t], 0
			continue
		case ir.OpRet:
			var ret uint64
			if len(in.Args) == 1 {
				ret = r.eval(in.Args[0], fr.env)
			}
			r.sp = fr.savedSP
			r.frames = r.frames[:len(r.frames)-1]
			if len(r.frames) == 0 {
				return nil
			}
			caller := r.frames[len(r.frames)-1]
			if call := caller.block.Insts[caller.idx]; call.Name != "" {
				caller.env[call.Name] = ret
			}
			caller.idx++
			continue
		case ir.OpCall:
			if len(r.frames) >= ir.MaxCallDepth {
				return refCrash{"call depth exceeded"}
			}
			callee := r.mod.Func(in.Callee)
			env := map[string]uint64{}
			for i, p := range callee.Params {
				if i < len(in.Args) {
					env[p.Name] = r.eval(in.Args[i], fr.env)
				}
			}
			r.frames = append(r.frames, &refFrame{
				fn: callee, block: callee.Blocks[0], env: env, savedSP: r.sp,
			})
			continue
		}
		if err := r.exec(in, fr.env); err != nil {
			return err
		}
		fr.idx++
	}
}

func (r *refInterp) exec(in *ir.Inst, env map[string]uint64) error {
	var result uint64
	switch in.Op {
	case ir.OpAdd:
		result = r.eval(in.Args[0], env) + r.eval(in.Args[1], env)
	case ir.OpSub:
		result = r.eval(in.Args[0], env) - r.eval(in.Args[1], env)
	case ir.OpMul:
		result = r.eval(in.Args[0], env) * r.eval(in.Args[1], env)
	case ir.OpSDiv, ir.OpSRem:
		a, b := int64(r.eval(in.Args[0], env)), int64(r.eval(in.Args[1], env))
		if b == 0 {
			return refCrash{"divide by zero"}
		}
		if a == -1<<63 && b == -1 {
			return refCrash{"divide overflow"}
		}
		if in.Op == ir.OpSDiv {
			result = uint64(a / b)
		} else {
			result = uint64(a % b)
		}
	case ir.OpAnd:
		result = r.eval(in.Args[0], env) & r.eval(in.Args[1], env)
	case ir.OpOr:
		result = r.eval(in.Args[0], env) | r.eval(in.Args[1], env)
	case ir.OpXor:
		result = r.eval(in.Args[0], env) ^ r.eval(in.Args[1], env)
	case ir.OpShl:
		result = r.eval(in.Args[0], env) << (r.eval(in.Args[1], env) & 63)
	case ir.OpLShr:
		result = r.eval(in.Args[0], env) >> (r.eval(in.Args[1], env) & 63)
	case ir.OpAShr:
		result = uint64(int64(r.eval(in.Args[0], env)) >> (r.eval(in.Args[1], env) & 63))
	case ir.OpICmp:
		if in.Pred.Eval(int64(r.eval(in.Args[0], env)), int64(r.eval(in.Args[1], env))) {
			result = 1
		}
	case ir.OpAlloca:
		size := uint64(in.NSlots) * 8
		if size > r.sp || r.sp-size < ir.GuardSize {
			return refCrash{"stack overflow in alloca"}
		}
		r.sp -= size
		result = r.sp
	case ir.OpLoad:
		addr := r.eval(in.Args[0], env)
		if addr < ir.GuardSize || addr+8 > uint64(len(r.mem)) || addr+8 < addr {
			return refCrash{fmt.Sprintf("load at %#x out of range", addr)}
		}
		result = binary.LittleEndian.Uint64(r.mem[addr:])
	case ir.OpStore:
		v := r.eval(in.Args[0], env)
		addr := r.eval(in.Args[1], env)
		if addr < ir.GuardSize || addr+8 > uint64(len(r.mem)) || addr+8 < addr {
			return refCrash{fmt.Sprintf("store at %#x out of range", addr)}
		}
		binary.LittleEndian.PutUint64(r.mem[addr:], v)
		return nil
	case ir.OpGEP:
		result = r.eval(in.Args[0], env) + 8*r.eval(in.Args[1], env)
	case ir.OpOut:
		r.output = append(r.output, r.eval(in.Args[0], env))
		return nil
	case ir.OpCheck:
		if r.eval(in.Args[0], env) != r.eval(in.Args[1], env) {
			return errRefDetected
		}
		return nil
	default:
		return refCrash{fmt.Sprintf("unimplemented op %s", in.Op)}
	}

	if in.Name != "" {
		switch in.Op {
		case ir.OpAlloca, ir.OpCall:
		default:
			if r.fault != nil && r.sites == r.fault.Site {
				result ^= 1 << (r.fault.Bit % 64)
				r.injected = true
				r.injStep = r.steps
			}
			r.sites++
		}
		env[in.Name] = result
	}
	return nil
}

func (r *refInterp) eval(v ir.Value, env map[string]uint64) uint64 {
	switch x := v.(type) {
	case ir.Const:
		return uint64(int64(x))
	case *ir.Param:
		return env[x.Name]
	case *ir.Inst:
		return env[x.Name]
	}
	return 0
}

// TestEquivDecodeVsReferenceIR runs every Rodinia cell × {raw, eddi} on the
// decoded interpreter and on the name-keyed reference engine, asserting an
// identical RunResult for the golden run and a spread of fault injections.
func TestEquivDecodeVsReferenceIR(t *testing.T) {
	for _, name := range rodinia.Names() {
		b, ok := rodinia.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		inst, err := b.Instantiate(1, 99)
		if err != nil {
			t.Fatal(err)
		}
		mods := map[string]*ir.Module{"raw": inst.Mod}
		if mods["eddi"], err = irpass.EDDI(inst.Mod); err != nil {
			t.Fatal(err)
		}
		for tech, mod := range mods {
			ip, err := ir.NewInterp(mod, equivMemSize)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefInterp(mod, equivMemSize)
			if err := inst.Setup(ip); err != nil {
				t.Fatal(err)
			}
			if err := inst.Setup(ref); err != nil {
				t.Fatal(err)
			}

			golden := ir.RunOpts{Args: inst.Args, MaxSteps: equivMaxSteps}
			want := ref.run(golden)
			got := ip.Run(golden)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s: golden RunResult differs:\ndecoded: %+v\nref:     %+v",
					name, tech, got, want)
			}
			if want.Outcome != ir.OutcomeOK {
				t.Fatalf("%s/%s: golden outcome = %v (%s)", name, tech, want.Outcome, want.CrashMsg)
			}

			sites := want.Sites
			for _, site := range []uint64{0, sites / 3, sites / 2, sites - 1} {
				for _, bit := range []uint{0, 13, 63} {
					opts := ir.RunOpts{
						Args: inst.Args, MaxSteps: equivMaxSteps,
						Fault: &ir.Fault{Site: site, Bit: bit},
					}
					fw := ref.run(opts)
					fg := ip.Run(opts)
					if !reflect.DeepEqual(fg, fw) {
						t.Errorf("%s/%s site=%d bit=%d: fault RunResult differs:\ndecoded: %+v\nref:     %+v",
							name, tech, site, bit, fg, fw)
					}
				}
			}
		}
	}
}
