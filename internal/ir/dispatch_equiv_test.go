package ir_test

import (
	"math/rand"
	"reflect"
	"testing"

	"ferrum/internal/ir"
	"ferrum/internal/progen"
)

// The IR interpreter has two dispatch paths: the block-segment loop (the
// default) and runLegacy (taken whenever a checkpoint callback is set).
// This property test pins them bit-identical on randomly generated
// branch-dense programs — golden runs, injected faults, and step budgets
// chosen to expire at every interesting point, including inside a block
// segment (the case the hoisted hang check must hand to the slow path).

func newFuzzInterp(t *testing.T, mod *ir.Module) *ir.Interp {
	t.Helper()
	ip, err := ir.NewInterp(mod, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if err := ip.WriteWordImage(8192+8*uint64(s), uint64(s*5+3)); err != nil {
			t.Fatal(err)
		}
	}
	return ip
}

// legacyOpts forces the legacy one-instruction loop without observable side
// effects: the callback is armed (which selects runLegacy) but the spacing
// exceeds the run's site count, so no snapshot is ever taken.
func legacyOpts(opts ir.RunOpts, sites uint64) ir.RunOpts {
	opts.CheckpointEvery = sites + 1
	opts.OnCheckpoint = func(*ir.Snapshot) {}
	return opts
}

func TestEquivIRDispatchTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(77177))
	iters := 15
	if testing.Short() {
		iters = 5
	}
	const maxSteps = 5_000_000
	for i := 0; i < iters; i++ {
		mod, err := progen.Generate(rng, progen.Options{
			Stmts: 30, Calls: i%3 == 0, BranchDensity: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		args := []uint64{8192, uint64(rng.Int63n(10000)), uint64(rng.Int63n(10000))}
		block := newFuzzInterp(t, mod)
		legacy := newFuzzInterp(t, mod)

		base := ir.RunOpts{Args: args, MaxSteps: maxSteps}
		want := legacy.Run(legacyOpts(base, maxSteps))
		if want.Outcome != ir.OutcomeOK {
			t.Fatalf("iter %d: golden outcome = %v (%s)\n%s", i, want.Outcome, want.CrashMsg, mod)
		}
		if got := block.Run(base); !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: golden RunResult differs:\nblock:  %+v\nlegacy: %+v", i, got, want)
		}

		// Fault parity: the fast loop must hand every segment that could
		// contain the planned site to the per-instruction path.
		if s := want.Sites; s > 0 {
			for _, site := range []uint64{0, s / 3, s / 2, s - 1} {
				for _, bit := range []uint{0, 13, 63} {
					opts := base
					opts.Fault = &ir.Fault{Site: site, Bit: bit}
					fw := legacy.Run(legacyOpts(opts, maxSteps))
					fg := block.Run(opts)
					if !reflect.DeepEqual(fg, fw) {
						t.Errorf("iter %d site=%d bit=%d: fault RunResult differs:\nblock:  %+v\nlegacy: %+v",
							i, site, bit, fg, fw)
					}
				}
			}
		}

		// Budget parity: expire the watchdog at every boundary shape —
		// first instruction, mid-run (usually mid-block), and exactly at
		// the golden step count (which must NOT hang: the legacy check is
		// increment-then-exceed, so steps == maxSteps completes).
		for _, ms := range []uint64{1, 2, want.Steps / 2, want.Steps - 1, want.Steps} {
			if ms == 0 {
				continue
			}
			opts := base
			opts.MaxSteps = ms
			hw := legacy.Run(legacyOpts(opts, maxSteps))
			hg := block.Run(opts)
			if !reflect.DeepEqual(hg, hw) {
				t.Errorf("iter %d maxsteps=%d: RunResult differs:\nblock:  %+v\nlegacy: %+v",
					i, ms, hg, hw)
			}
			if ms == want.Steps && hw.Outcome != ir.OutcomeOK {
				t.Errorf("iter %d: budget equal to golden steps must complete, got %v", i, hw.Outcome)
			}
		}

		// Clone parity: a clone of a used template reproduces the golden
		// run from its own pristine state.
		if got := block.Clone().Run(base); !reflect.DeepEqual(got, want) {
			t.Errorf("iter %d: cloned interpreter RunResult differs:\nclone:  %+v\nlegacy: %+v", i, got, want)
		}
	}
}
