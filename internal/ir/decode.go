package ir

import "fmt"

// This file is the interpreter's load-time decode stage. NewInterp runs a
// register-numbering pass over every function: each parameter and each named
// instruction result is assigned a dense frame slot, branch and call targets
// are resolved to block/function indices, and constants are pre-converted to
// their uint64 form. The run loop then executes decoded instructions against
// a flat []uint64 frame — no map lookups and no string comparisons per
// dynamic instruction. Decoding is purely a representation change: the
// decoded program computes bit-identical results, site counts and crash
// messages to the name-keyed interpreter it replaced.

// dval is a decoded operand: a frame slot or an inline constant.
type dval struct {
	slot int32 // >= 0: index into the frame's registers; < 0: constant
	c    uint64
}

// get reads the operand against a frame's registers.
func (v dval) get(regs []uint64) uint64 {
	if v.slot >= 0 {
		return regs[v.slot]
	}
	return v.c
}

// dinst is a decoded instruction.
type dinst struct {
	op     Op
	pred   Pred  // OpICmp
	site   bool  // dynamic executions are fault-injection sites
	dst    int32 // frame slot of the result, -1 for none
	args   []dval
	callee int32 // OpCall: index into Interp.dfuncs
	t0, t1 int32 // OpBr: t0; OpCondBr: taken t0, not-taken t1
	nslots int64 // OpAlloca
}

// dblock is a decoded basic block.
type dblock struct {
	name  string
	insts []dinst
	// siteSuffix[i] is the number of fault-injection sites from instruction
	// i to the end of the block. Block dispatch compares it against the
	// planned fault's site index to prove the fault cannot land inside the
	// remaining straight-line segment, letting the fast loop skip the
	// per-instruction site comparison entirely.
	siteSuffix []int32
}

// dfunc is a decoded function: its blocks, the frame size the numbering
// pass assigned, and the name<->slot correspondence Snapshot/Restore use to
// convert frames to and from the engine-independent name-keyed form.
type dfunc struct {
	fn       *Func
	blocks   []dblock
	nregs    int
	nparams  int
	names    []string         // slot -> value name
	slotOf   map[string]int32 // value name -> slot
	blockIdx map[string]int32 // block name -> index into blocks
}

// decodeFunc numbers the function's values and decodes every instruction.
// funcIdx maps function names to their Interp.dfuncs index.
func decodeFunc(f *Func, funcIdx map[string]int32) (*dfunc, error) {
	df := &dfunc{
		fn:       f,
		blocks:   make([]dblock, len(f.Blocks)),
		nparams:  len(f.Params),
		slotOf:   make(map[string]int32, len(f.Params)+f.InstCount()),
		blockIdx: make(map[string]int32, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		df.blockIdx[b.Name] = int32(i)
	}
	// Slot numbering: parameters first (so call argument i lands in slot i),
	// then instruction results in layout order. Verify has already rejected
	// redefinitions, so every name gets exactly one slot.
	assign := func(name string) int32 {
		if s, ok := df.slotOf[name]; ok {
			return s
		}
		s := int32(len(df.names))
		df.slotOf[name] = s
		df.names = append(df.names, name)
		return s
	}
	for _, p := range f.Params {
		assign(p.Name)
	}
	nargs := 0
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Name != "" {
				assign(in.Name)
			}
			nargs += len(in.Args)
		}
	}
	df.nregs = len(df.names)

	// One contiguous operand arena for the whole function keeps decoded
	// blocks cache-friendly.
	arena := make([]dval, 0, nargs)
	resolve := func(v Value) dval {
		switch x := v.(type) {
		case Const:
			return dval{slot: -1, c: uint64(int64(x))}
		case *Param:
			if s, ok := df.slotOf[x.Name]; ok {
				return dval{slot: s}
			}
		case *Inst:
			if s, ok := df.slotOf[x.Name]; ok {
				return dval{slot: s}
			}
		}
		// Unknown value kinds and unnamed results read as zero, exactly as
		// a missing entry in the legacy name-keyed environment did.
		return dval{slot: -1}
	}

	for bi, b := range f.Blocks {
		dbl := dblock{name: b.Name, insts: make([]dinst, len(b.Insts))}
		for ii, in := range b.Insts {
			di := &dbl.insts[ii]
			di.op = in.Op
			di.pred = in.Pred
			di.nslots = in.NSlots
			di.site = isSite(in)
			di.dst = -1
			if in.Name != "" {
				di.dst = df.slotOf[in.Name]
			}
			lo := len(arena)
			for _, a := range in.Args {
				arena = append(arena, resolve(a))
			}
			di.args = arena[lo:len(arena):len(arena)]
			switch in.Op {
			case OpBr:
				t, ok := df.blockIdx[in.Targets[0]]
				if !ok {
					return nil, fmt.Errorf("ir: @%s/%s+%d: br to undefined block %q",
						f.Name, b.Name, ii, in.Targets[0])
				}
				di.t0 = t
			case OpCondBr:
				t0, ok0 := df.blockIdx[in.Targets[0]]
				t1, ok1 := df.blockIdx[in.Targets[1]]
				if !ok0 || !ok1 {
					return nil, fmt.Errorf("ir: @%s/%s+%d: br to undefined block %v",
						f.Name, b.Name, ii, in.Targets)
				}
				di.t0, di.t1 = t0, t1
			case OpCall:
				ci, ok := funcIdx[in.Callee]
				if !ok {
					return nil, fmt.Errorf("ir: @%s/%s+%d: call to undefined function @%s",
						f.Name, b.Name, ii, in.Callee)
				}
				di.callee = ci
			}
		}
		dbl.siteSuffix = make([]int32, len(dbl.insts))
		s := int32(0)
		for i := len(dbl.insts) - 1; i >= 0; i-- {
			if dbl.insts[i].site {
				s++
			}
			dbl.siteSuffix[i] = s
		}
		df.blocks[bi] = dbl
	}
	return df, nil
}

// acquireRegs hands out a zeroed register frame of at least n slots,
// reusing retired frames so steady-state calls allocate nothing.
func (ip *Interp) acquireRegs(n int) []uint64 {
	if k := len(ip.regPool); k > 0 {
		regs := ip.regPool[k-1]
		ip.regPool[k-1] = nil
		ip.regPool = ip.regPool[:k-1]
		if cap(regs) >= n {
			regs = regs[:n]
			clear(regs)
			return regs
		}
	}
	return make([]uint64, n)
}

// releaseRegs returns a frame's registers to the pool.
func (ip *Interp) releaseRegs(regs []uint64) {
	ip.regPool = append(ip.regPool, regs)
}

// recycleFrames retires any call stack left over from a crashed or hung
// run, returning its register frames to the pool.
func (ip *Interp) recycleFrames() {
	for i := range ip.frames {
		ip.releaseRegs(ip.frames[i].regs)
		ip.frames[i].regs = nil
	}
	ip.frames = ip.frames[:0]
}
