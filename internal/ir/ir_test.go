package ir

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

const memSize = 1 << 16

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return m
}

func interpRun(t *testing.T, src string, opts RunOpts) RunResult {
	t.Helper()
	m := mustParse(t, src)
	ip, err := NewInterp(m, memSize)
	if err != nil {
		t.Fatalf("NewInterp: %v", err)
	}
	return ip.Run(opts)
}

const sumSrc = `
; sum 1..n via a memory-carried loop counter
func @main(%n) {
entry:
  %acc = alloca 1
  %i = alloca 1
  store 0, %acc
  store 1, %i
  br loop
loop:
  %iv = load %i
  %c = icmp sle %iv, %n
  br %c, body, done
body:
  %a = load %acc
  %a2 = add %a, %iv
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  out %r
  ret %r
}
`

func TestInterpSumLoop(t *testing.T) {
	res := interpRun(t, sumSrc, RunOpts{Args: []uint64{10}})
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.CrashMsg)
	}
	if len(res.Output) != 1 || res.Output[0] != 55 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestInterpRecursion(t *testing.T) {
	src := `
func @fib(%n) {
entry:
  %c = icmp sle %n, 1
  br %c, base, rec
base:
  ret %n
rec:
  %n1 = sub %n, 1
  %n2 = sub %n, 2
  %a = call @fib(%n1)
  %b = call @fib(%n2)
  %r = add %a, %b
  ret %r
}

func @main(%n) {
entry:
  %r = call @fib(%n)
  out %r
  ret %r
}
`
	res := interpRun(t, src, RunOpts{Args: []uint64{10}})
	if res.Outcome != OutcomeOK || res.Output[0] != 55 {
		t.Fatalf("res = %+v (%s)", res, res.CrashMsg)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := mustParse(t, sumSrc)
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if m2.String() != text {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", text, m2.String())
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src string
	}{
		{"undefined value", "func @f() {\nentry:\n  out %x\n  ret\n}\n"},
		{"unknown op", "func @f() {\nentry:\n  %x = frob 1, 2\n  ret\n}\n"},
		{"redefinition", "func @f() {\nentry:\n  %x = add 1, 2\n  %x = add 1, 2\n  ret\n}\n"},
		{"missing terminator", "func @f() {\nentry:\n  %x = add 1, 2\n}\n"},
		{"bad target", "func @f() {\nentry:\n  br nowhere\n}\n"},
		{"unknown callee", "func @f() {\nentry:\n  call @g()\n  ret\n}\n"},
		{"bad arity call", "func @g(%a) {\nentry:\n  ret\n}\nfunc @f() {\nentry:\n  call @g()\n  ret\n}\n"},
		{"inst outside block", "func @f() {\n  %x = add 1, 2\n}\n"},
		{"store with result", "func @f() {\nentry:\n  %p = alloca 1\n  %x = store 1, %p\n  ret\n}\n"},
		{"use before def", "func @f() {\nentry:\n  out %y\n  %y = add 1, 2\n  ret\n}\n"},
		{"terminator mid-block", "func @f() {\nentry:\n  ret\n  ret\n}\n"},
		{"dup param", "func @f(%a, %a) {\nentry:\n  ret\n}\n"},
		{"icmp bad pred", "func @f() {\nentry:\n  %c = icmp wat 1, 2\n  ret\n}\n"},
		{"alloca zero", "func @f() {\nentry:\n  %p = alloca 0\n  ret\n}\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Errorf("Parse accepted bad program:\n%s", tt.src)
			}
		})
	}
}

func TestCheckInstruction(t *testing.T) {
	ok := `
func @main(%n) {
entry:
  %a = add %n, 1
  %b = add %n, 1
  check %a, %b
  out %a
  ret
}
`
	res := interpRun(t, ok, RunOpts{Args: []uint64{4}})
	if res.Outcome != OutcomeOK || res.Output[0] != 5 {
		t.Fatalf("res = %+v", res)
	}
	bad := `
func @main(%n) {
entry:
  %a = add %n, 1
  %b = add %n, 2
  check %a, %b
  out %a
  ret
}
`
	res = interpRun(t, bad, RunOpts{Args: []uint64{4}})
	if res.Outcome != OutcomeDetected {
		t.Fatalf("outcome = %v, want detected", res.Outcome)
	}
	if len(res.Output) != 0 {
		t.Errorf("output after detection = %v, want none", res.Output)
	}
}

func TestCrashOutcomes(t *testing.T) {
	tests := []struct {
		name, src string
	}{
		{"null load", "func @main() {\nentry:\n  %v = load 0\n  ret\n}\n"},
		{"oob store", fmt.Sprintf("func @main() {\nentry:\n  store 1, %d\n  ret\n}\n", memSize)},
		{"div by zero", "func @main(%n) {\nentry:\n  %v = sdiv 1, %n\n  ret\n}\n"},
		{"rem by zero", "func @main(%n) {\nentry:\n  %v = srem 1, %n\n  ret\n}\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := interpRun(t, tt.src, RunOpts{})
			if res.Outcome != OutcomeCrash {
				t.Errorf("outcome = %v, want crash", res.Outcome)
			}
		})
	}
}

func TestHang(t *testing.T) {
	src := `
func @main() {
entry:
  br entry
}
`
	res := interpRun(t, src, RunOpts{MaxSteps: 100})
	if res.Outcome != OutcomeHang {
		t.Fatalf("outcome = %v, want hang", res.Outcome)
	}
}

func TestMemImageVisibleToProgram(t *testing.T) {
	src := `
func @main(%base) {
entry:
  %v = load %base
  %p1 = gep %base, 1
  %w = load %p1
  %s = add %v, %w
  out %s
  ret
}
`
	m := mustParse(t, src)
	ip, err := NewInterp(m, memSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.WriteWordImage(8192, 40); err != nil {
		t.Fatal(err)
	}
	if err := ip.WriteWordImage(8200, 2); err != nil {
		t.Fatal(err)
	}
	res := ip.Run(RunOpts{Args: []uint64{8192}})
	if res.Outcome != OutcomeOK || res.Output[0] != 42 {
		t.Fatalf("res = %+v (%s)", res, res.CrashMsg)
	}
	// Second run sees the pristine image again even though the program
	// could have modified memory.
	res2 := ip.Run(RunOpts{Args: []uint64{8192}})
	if res2.Output[0] != 42 {
		t.Fatalf("image not restored: %v", res2.Output)
	}
}

func TestFaultInjectionIR(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %a = add %n, 0
  out %a
  ret
}
`
	m := mustParse(t, src)
	ip, err := NewInterp(m, memSize)
	if err != nil {
		t.Fatal(err)
	}
	golden := ip.Run(RunOpts{Args: []uint64{100}})
	if golden.Sites != 1 {
		t.Fatalf("golden sites = %d, want 1", golden.Sites)
	}
	res := ip.Run(RunOpts{Args: []uint64{100}, Fault: &Fault{Site: 0, Bit: 3}})
	if !res.Injected || res.Output[0] != 108 {
		t.Fatalf("res = %+v", res)
	}
	// Alloca and call results are not sites.
	src2 := `
func @id(%x) {
entry:
  ret %x
}
func @main(%n) {
entry:
  %p = alloca 4
  %r = call @id(%n)
  out %r
  ret
}
`
	m2 := mustParse(t, src2)
	ip2, err := NewInterp(m2, memSize)
	if err != nil {
		t.Fatal(err)
	}
	g := ip2.Run(RunOpts{Args: []uint64{5}})
	if g.Sites != 0 {
		t.Fatalf("sites = %d, want 0 (alloca/call excluded)", g.Sites)
	}
}

func TestBinaryOpsPropertyVsGo(t *testing.T) {
	ops := map[string]func(a, b int64) int64{
		"add": func(a, b int64) int64 { return a + b },
		"sub": func(a, b int64) int64 { return a - b },
		"mul": func(a, b int64) int64 { return a * b },
		"and": func(a, b int64) int64 { return a & b },
		"or":  func(a, b int64) int64 { return a | b },
		"xor": func(a, b int64) int64 { return a ^ b },
	}
	for name, eval := range ops {
		name, eval := name, eval
		f := func(a, b int64) bool {
			src := fmt.Sprintf("func @main(%%a, %%b) {\nentry:\n  %%r = %s %%a, %%b\n  out %%r\n  ret\n}\n", name)
			m, err := Parse(src)
			if err != nil {
				return false
			}
			ip, err := NewInterp(m, memSize)
			if err != nil {
				return false
			}
			res := ip.Run(RunOpts{Args: []uint64{uint64(a), uint64(b)}})
			return res.Outcome == OutcomeOK && int64(res.Output[0]) == eval(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDivRemPropertyVsGo(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 || (a == -1<<63 && b == -1) {
			return true
		}
		src := "func @main(%a, %b) {\nentry:\n  %q = sdiv %a, %b\n  %r = srem %a, %b\n  out %q\n  out %r\n  ret\n}\n"
		m, err := Parse(src)
		if err != nil {
			return false
		}
		ip, err := NewInterp(m, memSize)
		if err != nil {
			return false
		}
		res := ip.Run(RunOpts{Args: []uint64{uint64(a), uint64(b)}})
		return res.Outcome == OutcomeOK &&
			int64(res.Output[0]) == a/b && int64(res.Output[1]) == a%b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestICmpPropertyVsGo(t *testing.T) {
	for pred := PredEQ; pred <= PredSGE; pred++ {
		pred := pred
		f := func(a, b int64) bool {
			src := fmt.Sprintf("func @main(%%a, %%b) {\nentry:\n  %%c = icmp %s %%a, %%b\n  out %%c\n  ret\n}\n", pred)
			m, err := Parse(src)
			if err != nil {
				return false
			}
			ip, err := NewInterp(m, memSize)
			if err != nil {
				return false
			}
			res := ip.Run(RunOpts{Args: []uint64{uint64(a), uint64(b)}})
			want := uint64(0)
			if pred.Eval(a, b) {
				want = 1
			}
			return res.Outcome == OutcomeOK && res.Output[0] == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%v: %v", pred, err)
		}
	}
}

func TestVerifyBuilderModules(t *testing.T) {
	// A hand-built module missing a terminator must be rejected.
	blk := &Block{Name: "entry", Insts: []*Inst{
		{Op: OpAdd, Name: "x", Args: []Value{Const(1), Const(2)}},
	}}
	m := &Module{Funcs: []*Func{{Name: "f", Blocks: []*Block{blk}}}}
	if err := Verify(m); err == nil {
		t.Error("Verify accepted unterminated block")
	}
	blk.Insts = append(blk.Insts, &Inst{Op: OpRet})
	if err := Verify(m); err != nil {
		t.Errorf("Verify rejected valid module: %v", err)
	}
}

func TestModuleHelpers(t *testing.T) {
	m := mustParse(t, sumSrc)
	if m.Func("main") == nil || m.Func("nope") != nil {
		t.Error("Func lookup broken")
	}
	if got := m.InstCount(); got != 17 {
		t.Errorf("InstCount = %d, want 17", got)
	}
	f := m.Func("main")
	if f.Block("loop") == nil {
		t.Error("Block lookup broken")
	}
	if !strings.Contains(f.String(), "icmp sle") {
		t.Error("printer lost icmp predicate")
	}
}
