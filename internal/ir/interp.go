package ir

import (
	"encoding/binary"
	"fmt"
)

// Outcome is the terminal state of one IR execution.
type Outcome uint8

// Execution outcomes.
const (
	OutcomeOK       Outcome = iota
	OutcomeDetected         // a check instruction fired
	OutcomeCrash            // memory fault or divide error
	OutcomeHang             // exceeded the step budget
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeDetected:
		return "detected"
	case OutcomeCrash:
		return "crash"
	case OutcomeHang:
		return "hang"
	}
	return fmt.Sprintf("outcome?%d", o)
}

// GuardSize mirrors the machine's unmapped low region so IR and assembly
// executions share one address space layout.
const GuardSize = 4096

// DefaultMaxSteps bounds runaway executions.
const DefaultMaxSteps = 50_000_000

// MaxCallDepth bounds recursion so that fault-corrupted base cases crash
// the interpreted program (matching the machine model, where runaway
// recursion exhausts the simulated stack).
const MaxCallDepth = 10_000

// Fault is an IR-level single-bit fault plan (the LLFI-style injector the
// paper's "anticipated" coverage is measured with): flip bit Bit of the
// result of the Site-th dynamically executed value-producing instruction.
// Alloca addresses and call results are not sites; see package fi.
type Fault struct {
	Site uint64
	Bit  uint
}

// RunOpts configures one interpreted execution.
type RunOpts struct {
	Args     []uint64
	MaxSteps uint64
	Fault    *Fault
	// CheckpointEvery captures a Snapshot after every CheckpointEvery-th
	// dynamic site and passes it to OnCheckpoint. 0 disables.
	CheckpointEvery uint64
	OnCheckpoint    func(*Snapshot)
	// Resume starts execution from a snapshot instead of the entry
	// function; Args are ignored and all counters continue from the
	// snapshot's values, so a resumed run's RunResult is bit-identical to
	// a from-scratch run that passed through the snapshot point.
	Resume *Snapshot
}

// RunResult summarises one interpreted execution.
type RunResult struct {
	Outcome  Outcome
	Output   []uint64
	Steps    uint64
	Sites    uint64
	CrashMsg string
	Injected bool
	// FaultStep is the retired-instruction count at the moment the fault
	// was applied (valid only when Injected). Steps - FaultStep is the
	// detection latency in retired IR instructions.
	FaultStep uint64
}

// frame is one activation record of the explicit call stack. The
// interpreter keeps frames on a slice instead of the Go stack so a mid-run
// Snapshot can capture — and Restore rebuild — the whole call state. regs
// is the dense register file the decode stage numbered the function's
// values into; it comes from (and returns to) the interpreter's frame pool.
type frame struct {
	df      *dfunc
	block   int32 // index into df.blocks
	idx     int32 // index of the next instruction within the block
	regs    []uint64
	savedSP uint64
}

// Interp executes IR modules against the same flat memory model the
// machine uses, so benchmark data loaders work identically at both levels.
type Interp struct {
	mod      *Module
	memImage []byte

	dfuncs  []*dfunc         // decoded functions, parallel to mod.Funcs
	funcIdx map[string]int32 // function name -> dfuncs index
	entry   int32            // dfuncs index of the entry function
	regPool [][]uint64       // retired register frames for reuse

	mem []byte
	// Dirty-page tracking mirrors the machine's: mem deviates from
	// memImage only inside pages listed in dirtyPages, so per-run resets,
	// Snapshot and Restore copy only what the run touched.
	dirty      []bool
	dirtyPages []int32
	memSynced  bool

	frames   []frame
	sp       uint64
	output   []uint64
	steps    uint64
	maxSteps uint64
	sites    uint64
	fault    *Fault
	injected bool
	// injStep is the retired-instruction count at the moment the fault was
	// applied (valid only when injected). Steps - injStep is the fault's
	// detection latency in retired IR instructions.
	injStep uint64

	checkpointEvery uint64
	onCheckpoint    func(*Snapshot)
}

// NewInterp builds an interpreter for a verified module.
func NewInterp(mod *Module, memSize int) (*Interp, error) {
	if err := Verify(mod); err != nil {
		return nil, err
	}
	if mod.Entry == "" || mod.Func(mod.Entry) == nil {
		return nil, fmt.Errorf("ir: entry function %q not found", mod.Entry)
	}
	if memSize < GuardSize*2 {
		return nil, fmt.Errorf("ir: memory size %d too small", memSize)
	}
	ip := &Interp{
		mod:      mod,
		memImage: make([]byte, memSize),
		mem:      make([]byte, memSize),
		dirty:    make([]bool, (memSize+pageSize-1)>>pageShift),
		dfuncs:   make([]*dfunc, len(mod.Funcs)),
		funcIdx:  make(map[string]int32, len(mod.Funcs)),
	}
	for i, f := range mod.Funcs {
		ip.funcIdx[f.Name] = int32(i)
	}
	for i, f := range mod.Funcs {
		df, err := decodeFunc(f, ip.funcIdx)
		if err != nil {
			return nil, err
		}
		ip.dfuncs[i] = df
	}
	ip.entry = ip.funcIdx[mod.Entry]
	return ip, nil
}

// Clone returns an interpreter that shares this one's immutable decoded
// program (module, decoded functions, function index) and pristine memory
// image, but owns all mutable run state — memory, dirty tracking, frames
// and the register pool. Campaign workers clone one fully-loaded template
// instead of re-verifying, re-decoding and re-copying the data image per
// worker; clones may then Run concurrently. SetMemImage must not be called
// on a clone: the image is shared with the template and every sibling.
func (ip *Interp) Clone() *Interp {
	return &Interp{
		mod:      ip.mod,
		memImage: ip.memImage,
		dfuncs:   ip.dfuncs,
		funcIdx:  ip.funcIdx,
		entry:    ip.entry,
		mem:      make([]byte, len(ip.memImage)),
		dirty:    make([]bool, (len(ip.memImage)+pageSize-1)>>pageShift),
	}
}

// SetMemImage copies data into the pristine memory image at addr.
func (ip *Interp) SetMemImage(addr uint64, data []byte) error {
	if addr < GuardSize || addr+uint64(len(data)) > uint64(len(ip.memImage)) {
		return fmt.Errorf("ir: image write [%d,%d) out of range", addr, addr+uint64(len(data)))
	}
	copy(ip.memImage[addr:], data)
	ip.memSynced = false // force a full re-sync on the next run
	return nil
}

// WriteWordImage stores a 64-bit little-endian word into the pristine image.
func (ip *Interp) WriteWordImage(addr uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return ip.SetMemImage(addr, b[:])
}

type irCrash struct{ msg string }

func (e irCrash) Error() string { return e.msg }

var (
	errDetected = fmt.Errorf("ir: detected")
	errHang     = fmt.Errorf("ir: step budget exceeded")
)

// Run executes the module's entry function (or resumes from a snapshot).
func (ip *Interp) Run(opts RunOpts) RunResult {
	if opts.Resume != nil {
		if err := ip.Restore(opts.Resume); err != nil {
			return RunResult{Outcome: OutcomeCrash, CrashMsg: err.Error()}
		}
	} else {
		ip.restoreMem()
		ip.sp = uint64(len(ip.mem))
		ip.output = ip.output[:0]
		ip.steps, ip.sites = 0, 0
		ip.injected = false
		ip.injStep = 0
		ip.recycleFrames()
		entry := ip.dfuncs[ip.entry]
		regs := ip.acquireRegs(entry.nregs)
		for i := range entry.fn.Params {
			if i < len(opts.Args) {
				regs[i] = opts.Args[i]
			}
		}
		ip.frames = append(ip.frames, frame{df: entry, regs: regs, savedSP: ip.sp})
	}
	ip.fault = opts.Fault
	ip.maxSteps = opts.MaxSteps
	if ip.maxSteps == 0 {
		ip.maxSteps = DefaultMaxSteps
	}
	ip.checkpointEvery = opts.CheckpointEvery
	ip.onCheckpoint = opts.OnCheckpoint

	err := ip.run()

	res := RunResult{
		Output:    append([]uint64(nil), ip.output...),
		Steps:     ip.steps,
		Sites:     ip.sites,
		Injected:  ip.injected,
		FaultStep: ip.injStep,
	}
	switch e := err.(type) {
	case nil:
		res.Outcome = OutcomeOK
	case irCrash:
		res.Outcome = OutcomeCrash
		res.CrashMsg = e.msg
	default:
		switch err {
		case errDetected:
			res.Outcome = OutcomeDetected
		case errHang:
			res.Outcome = OutcomeHang
		default:
			res.Outcome = OutcomeCrash
			res.CrashMsg = err.Error()
		}
	}
	return res
}

// isSite reports whether the instruction's dynamic execution is an
// IR-level fault-injection site.
func isSite(in *Inst) bool {
	if in.Name == "" {
		return false
	}
	switch in.Op {
	case OpAlloca, OpCall:
		return false
	}
	return true
}

// controlFlow executes a branch, return or call instruction against the
// current top frame. It reports whether the entry function returned (done).
// The caller must re-fetch its frame pointer afterwards: OpCall may grow —
// and so reallocate — the frame slice, and OpRet pops it.
func (ip *Interp) controlFlow(in *dinst, fr *frame) (done bool, err error) {
	switch in.op {
	case OpBr:
		fr.block, fr.idx = in.t0, 0
	case OpCondBr:
		t := in.t1
		if in.args[0].get(fr.regs) != 0 {
			t = in.t0
		}
		fr.block, fr.idx = t, 0
	case OpRet:
		var r uint64
		if len(in.args) == 1 {
			r = in.args[0].get(fr.regs)
		}
		ip.sp = fr.savedSP
		ip.releaseRegs(fr.regs)
		ip.frames = ip.frames[:len(ip.frames)-1]
		if len(ip.frames) == 0 {
			return true, nil
		}
		// The caller's frame still points at its call instruction;
		// bind the return value there and step past it.
		caller := &ip.frames[len(ip.frames)-1]
		if call := &caller.df.blocks[caller.block].insts[caller.idx]; call.dst >= 0 {
			caller.regs[call.dst] = r
		}
		caller.idx++
	case OpCall:
		if len(ip.frames) >= MaxCallDepth {
			return false, irCrash{"call depth exceeded"}
		}
		callee := ip.dfuncs[in.callee]
		regs := ip.acquireRegs(callee.nregs)
		for i, a := range in.args {
			if i >= callee.nparams {
				break
			}
			regs[i] = a.get(fr.regs)
		}
		ip.frames = append(ip.frames, frame{df: callee, regs: regs, savedSP: ip.sp})
	}
	return false, nil
}

// run drives the explicit-frame interpreter until the entry function
// returns or the run terminates abnormally. Everything it touches per
// dynamic instruction is decoded: block and function targets are indices,
// operands are frame slots or inline constants.
//
// The default loop dispatches a basic-block segment at a time: one step-
// budget check and one fault-proximity check at segment entry cover every
// instruction up to the next control transfer, so the hot loop runs with no
// per-instruction watchdog or site comparison. When either check cannot be
// hoisted — the budget could expire inside the segment, or the planned
// fault site could land on one of its remaining sites — the loop executes
// exactly one instruction with the legacy per-instruction checks and
// re-evaluates. Checkpointed runs need the per-site callback after every
// instruction, so they take runLegacy, the verbatim original loop.
func (ip *Interp) run() error {
	if ip.checkpointEvery > 0 && ip.onCheckpoint != nil {
		return ip.runLegacy()
	}
outer:
	for {
		fr := &ip.frames[len(ip.frames)-1]
		bl := &fr.df.blocks[fr.block]
		n := int32(len(bl.insts))
		if fr.idx >= n {
			return irCrash{fmt.Sprintf("@%s/%s: fell off block end", fr.df.fn.Name, bl.name)}
		}
		// The segment executes at most n-idx instructions before a control
		// transfer returns to this header, so steps can never exceed the
		// budget inside it; likewise the fault site cannot be reached if it
		// lies beyond the block's remaining sites. (exec keeps its internal
		// injection check, but it can never fire inside a fast segment.)
		if ip.steps+uint64(n-fr.idx) > ip.maxSteps ||
			(ip.fault != nil && !ip.injected &&
				ip.fault.Site < ip.sites+uint64(bl.siteSuffix[fr.idx])) {
			// Legacy-checked single step: budget before the instruction,
			// fault applied by exec on the matching site.
			in := &bl.insts[fr.idx]
			ip.steps++
			if ip.steps > ip.maxSteps {
				return errHang
			}
			switch in.op {
			case OpBr, OpCondBr, OpRet, OpCall:
				done, err := ip.controlFlow(in, fr)
				if err != nil {
					return err
				}
				if done {
					return nil
				}
				continue
			}
			if err := ip.exec(in, fr.regs); err != nil {
				return err
			}
			fr.idx++
			continue
		}
		insts := bl.insts
		regs := fr.regs
		for fr.idx < n {
			in := &insts[fr.idx]
			ip.steps++
			switch in.op {
			case OpBr, OpCondBr, OpRet, OpCall:
				done, err := ip.controlFlow(in, fr)
				if err != nil {
					return err
				}
				if done {
					return nil
				}
				continue outer
			}
			if err := ip.exec(in, regs); err != nil {
				return err
			}
			fr.idx++
		}
	}
}

// runLegacy is the original one-instruction-at-a-time loop, retained
// verbatim for checkpointed runs: the per-site snapshot callback must
// observe the interpreter state after every instruction, which defeats
// block-level hoisting. Its per-instruction semantics are the reference
// the block loop is tested against.
func (ip *Interp) runLegacy() error {
	for {
		fr := &ip.frames[len(ip.frames)-1]
		bl := &fr.df.blocks[fr.block]
		if int(fr.idx) >= len(bl.insts) {
			return irCrash{fmt.Sprintf("@%s/%s: fell off block end", fr.df.fn.Name, bl.name)}
		}
		in := &bl.insts[fr.idx]
		ip.steps++
		if ip.steps > ip.maxSteps {
			return errHang
		}
		switch in.op {
		case OpBr, OpCondBr, OpRet, OpCall:
			done, err := ip.controlFlow(in, fr)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			continue
		}
		sitesBefore := ip.sites
		if err := ip.exec(in, fr.regs); err != nil {
			return err
		}
		fr.idx++
		if ip.checkpointEvery > 0 && ip.sites != sitesBefore &&
			ip.sites%ip.checkpointEvery == 0 && ip.onCheckpoint != nil {
			ip.onCheckpoint(ip.Snapshot())
		}
	}
}

func (ip *Interp) exec(in *dinst, regs []uint64) error {
	var result uint64
	switch in.op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		a := in.args[0].get(regs)
		b := in.args[1].get(regs)
		r, err := evalBinary(in.op, a, b)
		if err != nil {
			return err
		}
		result = r
	case OpICmp:
		a := int64(in.args[0].get(regs))
		b := int64(in.args[1].get(regs))
		if in.pred.Eval(a, b) {
			result = 1
		}
	case OpAlloca:
		size := uint64(in.nslots) * 8
		if size > ip.sp || ip.sp-size < GuardSize {
			return irCrash{"stack overflow in alloca"}
		}
		ip.sp -= size
		result = ip.sp
	case OpLoad:
		addr := in.args[0].get(regs)
		v, err := ip.load(addr)
		if err != nil {
			return err
		}
		result = v
	case OpStore:
		v := in.args[0].get(regs)
		addr := in.args[1].get(regs)
		return ip.store(addr, v)
	case OpGEP:
		result = in.args[0].get(regs) + 8*in.args[1].get(regs)
	case OpOut:
		ip.output = append(ip.output, in.args[0].get(regs))
		return nil
	case OpCheck:
		if in.args[0].get(regs) != in.args[1].get(regs) {
			return errDetected
		}
		return nil
	default:
		return irCrash{fmt.Sprintf("unimplemented op %s", in.op)}
	}

	if in.site {
		if ip.fault != nil && ip.sites == ip.fault.Site {
			result ^= 1 << (ip.fault.Bit % 64)
			ip.injected = true
			ip.injStep = ip.steps
		}
		ip.sites++
	}
	if in.dst >= 0 {
		regs[in.dst] = result
	}
	return nil
}

func evalBinary(op Op, a, b uint64) (uint64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpSDiv:
		if b == 0 {
			return 0, irCrash{"divide by zero"}
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0, irCrash{"divide overflow"}
		}
		return uint64(int64(a) / int64(b)), nil
	case OpSRem:
		if b == 0 {
			return 0, irCrash{"divide by zero"}
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0, irCrash{"divide overflow"}
		}
		return uint64(int64(a) % int64(b)), nil
	case OpAnd:
		return a & b, nil
	case OpOr:
		return a | b, nil
	case OpXor:
		return a ^ b, nil
	case OpShl:
		return a << (b & 63), nil
	case OpLShr:
		return a >> (b & 63), nil
	case OpAShr:
		return uint64(int64(a) >> (b & 63)), nil
	}
	return 0, irCrash{fmt.Sprintf("bad binary op %s", op)}
}

// The single-compare bounds check below is equivalent to the three-part
// `addr < GuardSize || addr+8 > len || addr+8 < addr` form: NewInterp
// guarantees len(mem) >= 2*GuardSize, so both subtractions are exact for
// valid addresses, and any out-of-range or wrapping addr makes the left
// side wrap to a huge value.

func (ip *Interp) load(addr uint64) (uint64, error) {
	if addr-GuardSize > uint64(len(ip.mem))-(GuardSize+8) {
		return 0, irCrash{fmt.Sprintf("load at %#x out of range", addr)}
	}
	return binary.LittleEndian.Uint64(ip.mem[addr:]), nil
}

func (ip *Interp) store(addr, v uint64) error {
	if addr-GuardSize > uint64(len(ip.mem))-(GuardSize+8) {
		return irCrash{fmt.Sprintf("store at %#x out of range", addr)}
	}
	ip.markDirty(addr, 8)
	binary.LittleEndian.PutUint64(ip.mem[addr:], v)
	return nil
}
