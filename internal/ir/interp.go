package ir

import (
	"encoding/binary"
	"fmt"
)

// Outcome is the terminal state of one IR execution.
type Outcome uint8

// Execution outcomes.
const (
	OutcomeOK       Outcome = iota
	OutcomeDetected         // a check instruction fired
	OutcomeCrash            // memory fault or divide error
	OutcomeHang             // exceeded the step budget
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeDetected:
		return "detected"
	case OutcomeCrash:
		return "crash"
	case OutcomeHang:
		return "hang"
	}
	return fmt.Sprintf("outcome?%d", o)
}

// GuardSize mirrors the machine's unmapped low region so IR and assembly
// executions share one address space layout.
const GuardSize = 4096

// DefaultMaxSteps bounds runaway executions.
const DefaultMaxSteps = 50_000_000

// MaxCallDepth bounds recursion so that fault-corrupted base cases crash
// the interpreted program (matching the machine model, where runaway
// recursion exhausts the simulated stack) instead of exhausting the host
// stack.
const MaxCallDepth = 10_000

// Fault is an IR-level single-bit fault plan (the LLFI-style injector the
// paper's "anticipated" coverage is measured with): flip bit Bit of the
// result of the Site-th dynamically executed value-producing instruction.
// Alloca addresses and call results are not sites; see package fi.
type Fault struct {
	Site uint64
	Bit  uint
}

// RunOpts configures one interpreted execution.
type RunOpts struct {
	Args     []uint64
	MaxSteps uint64
	Fault    *Fault
}

// RunResult summarises one interpreted execution.
type RunResult struct {
	Outcome  Outcome
	Output   []uint64
	Steps    uint64
	Sites    uint64
	CrashMsg string
	Injected bool
}

// Interp executes IR modules against the same flat memory model the
// machine uses, so benchmark data loaders work identically at both levels.
type Interp struct {
	mod      *Module
	memImage []byte

	mem      []byte
	sp       uint64
	output   []uint64
	steps    uint64
	maxSteps uint64
	depth    int
	sites    uint64
	fault    *Fault
	injected bool
}

// NewInterp builds an interpreter for a verified module.
func NewInterp(mod *Module, memSize int) (*Interp, error) {
	if err := Verify(mod); err != nil {
		return nil, err
	}
	if mod.Entry == "" || mod.Func(mod.Entry) == nil {
		return nil, fmt.Errorf("ir: entry function %q not found", mod.Entry)
	}
	if memSize < GuardSize*2 {
		return nil, fmt.Errorf("ir: memory size %d too small", memSize)
	}
	return &Interp{mod: mod, memImage: make([]byte, memSize), mem: make([]byte, memSize)}, nil
}

// SetMemImage copies data into the pristine memory image at addr.
func (ip *Interp) SetMemImage(addr uint64, data []byte) error {
	if addr < GuardSize || addr+uint64(len(data)) > uint64(len(ip.memImage)) {
		return fmt.Errorf("ir: image write [%d,%d) out of range", addr, addr+uint64(len(data)))
	}
	copy(ip.memImage[addr:], data)
	return nil
}

// WriteWordImage stores a 64-bit little-endian word into the pristine image.
func (ip *Interp) WriteWordImage(addr uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return ip.SetMemImage(addr, b[:])
}

type irCrash struct{ msg string }

func (e irCrash) Error() string { return e.msg }

var (
	errDetected = fmt.Errorf("ir: detected")
	errHang     = fmt.Errorf("ir: step budget exceeded")
)

// Run executes the module's entry function.
func (ip *Interp) Run(opts RunOpts) RunResult {
	copy(ip.mem, ip.memImage)
	ip.sp = uint64(len(ip.mem))
	ip.output = ip.output[:0]
	ip.steps, ip.sites = 0, 0
	ip.depth = 0
	ip.injected = false
	ip.fault = opts.Fault
	ip.maxSteps = opts.MaxSteps
	if ip.maxSteps == 0 {
		ip.maxSteps = DefaultMaxSteps
	}

	entry := ip.mod.Func(ip.mod.Entry)
	args := make([]uint64, len(entry.Params))
	copy(args, opts.Args)
	_, err := ip.call(entry, args)

	res := RunResult{
		Output:   append([]uint64(nil), ip.output...),
		Steps:    ip.steps,
		Sites:    ip.sites,
		Injected: ip.injected,
	}
	switch e := err.(type) {
	case nil:
		res.Outcome = OutcomeOK
	case irCrash:
		res.Outcome = OutcomeCrash
		res.CrashMsg = e.msg
	default:
		switch err {
		case errDetected:
			res.Outcome = OutcomeDetected
		case errHang:
			res.Outcome = OutcomeHang
		default:
			res.Outcome = OutcomeCrash
			res.CrashMsg = err.Error()
		}
	}
	return res
}

// isSite reports whether the instruction's dynamic execution is an
// IR-level fault-injection site.
func isSite(in *Inst) bool {
	if in.Name == "" {
		return false
	}
	switch in.Op {
	case OpAlloca, OpCall:
		return false
	}
	return true
}

func (ip *Interp) call(f *Func, args []uint64) (uint64, error) {
	ip.depth++
	defer func() { ip.depth-- }()
	if ip.depth > MaxCallDepth {
		return 0, irCrash{"call depth exceeded"}
	}
	env := make(map[string]uint64, len(f.Params)+f.InstCount())
	for i, p := range f.Params {
		if i < len(args) {
			env[p.Name] = args[i]
		}
	}
	savedSP := ip.sp
	defer func() { ip.sp = savedSP }()

	block := f.Blocks[0]
	for {
		for _, in := range block.Insts {
			ip.steps++
			if ip.steps > ip.maxSteps {
				return 0, errHang
			}
			switch in.Op {
			case OpBr:
				block = f.Block(in.Targets[0])
				goto nextBlock
			case OpCondBr:
				if ip.eval(in.Args[0], env) != 0 {
					block = f.Block(in.Targets[0])
				} else {
					block = f.Block(in.Targets[1])
				}
				goto nextBlock
			case OpRet:
				if len(in.Args) == 1 {
					return ip.eval(in.Args[0], env), nil
				}
				return 0, nil
			}
			if err := ip.exec(f, in, env); err != nil {
				return 0, err
			}
		}
		return 0, irCrash{fmt.Sprintf("@%s/%s: fell off block end", f.Name, block.Name)}
	nextBlock:
	}
}

func (ip *Interp) exec(f *Func, in *Inst, env map[string]uint64) error {
	var result uint64
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		a := ip.eval(in.Args[0], env)
		b := ip.eval(in.Args[1], env)
		r, err := evalBinary(in.Op, a, b)
		if err != nil {
			return err
		}
		result = r
	case OpICmp:
		a := int64(ip.eval(in.Args[0], env))
		b := int64(ip.eval(in.Args[1], env))
		if in.Pred.Eval(a, b) {
			result = 1
		}
	case OpAlloca:
		size := uint64(in.NSlots) * 8
		if size > ip.sp || ip.sp-size < GuardSize {
			return irCrash{"stack overflow in alloca"}
		}
		ip.sp -= size
		result = ip.sp
	case OpLoad:
		addr := ip.eval(in.Args[0], env)
		v, err := ip.load(addr)
		if err != nil {
			return err
		}
		result = v
	case OpStore:
		v := ip.eval(in.Args[0], env)
		addr := ip.eval(in.Args[1], env)
		return ip.store(addr, v)
	case OpGEP:
		result = ip.eval(in.Args[0], env) + 8*ip.eval(in.Args[1], env)
	case OpCall:
		callee := ip.mod.Func(in.Callee)
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = ip.eval(a, env)
		}
		r, err := ip.call(callee, args)
		if err != nil {
			return err
		}
		if in.Name != "" {
			env[in.Name] = r
		}
		return nil
	case OpOut:
		ip.output = append(ip.output, ip.eval(in.Args[0], env))
		return nil
	case OpCheck:
		if ip.eval(in.Args[0], env) != ip.eval(in.Args[1], env) {
			return errDetected
		}
		return nil
	default:
		return irCrash{fmt.Sprintf("unimplemented op %s", in.Op)}
	}

	if isSite(in) {
		if ip.fault != nil && ip.sites == ip.fault.Site {
			result ^= 1 << (ip.fault.Bit % 64)
			ip.injected = true
		}
		ip.sites++
	}
	if in.Name != "" {
		env[in.Name] = result
	}
	return nil
}

func evalBinary(op Op, a, b uint64) (uint64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpSDiv:
		if b == 0 {
			return 0, irCrash{"divide by zero"}
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0, irCrash{"divide overflow"}
		}
		return uint64(int64(a) / int64(b)), nil
	case OpSRem:
		if b == 0 {
			return 0, irCrash{"divide by zero"}
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0, irCrash{"divide overflow"}
		}
		return uint64(int64(a) % int64(b)), nil
	case OpAnd:
		return a & b, nil
	case OpOr:
		return a | b, nil
	case OpXor:
		return a ^ b, nil
	case OpShl:
		return a << (b & 63), nil
	case OpLShr:
		return a >> (b & 63), nil
	case OpAShr:
		return uint64(int64(a) >> (b & 63)), nil
	}
	return 0, irCrash{fmt.Sprintf("bad binary op %s", op)}
}

func (ip *Interp) load(addr uint64) (uint64, error) {
	if addr < GuardSize || addr+8 > uint64(len(ip.mem)) || addr+8 < addr {
		return 0, irCrash{fmt.Sprintf("load at %#x out of range", addr)}
	}
	return binary.LittleEndian.Uint64(ip.mem[addr:]), nil
}

func (ip *Interp) store(addr, v uint64) error {
	if addr < GuardSize || addr+8 > uint64(len(ip.mem)) || addr+8 < addr {
		return irCrash{fmt.Sprintf("store at %#x out of range", addr)}
	}
	binary.LittleEndian.PutUint64(ip.mem[addr:], v)
	return nil
}

func (ip *Interp) eval(v Value, env map[string]uint64) uint64 {
	switch x := v.(type) {
	case Const:
		return uint64(int64(x))
	case *Param:
		return env[x.Name]
	case *Inst:
		return env[x.Name]
	}
	return 0
}
