package ir

import "fmt"

// Verify checks module well-formedness: unique names, terminated blocks,
// resolvable branch targets and callees, argument-count agreement, and
// definition-before-use in layout order (the representation has no phi
// nodes, so loop-carried values must flow through memory).
func Verify(m *Module) error {
	funcs := map[string]*Func{}
	for _, f := range m.Funcs {
		if f.Name == "" {
			return fmt.Errorf("ir: function with empty name")
		}
		if _, dup := funcs[f.Name]; dup {
			return fmt.Errorf("ir: duplicate function @%s", f.Name)
		}
		funcs[f.Name] = f
	}
	for _, f := range m.Funcs {
		if err := verifyFunc(f, funcs); err != nil {
			return err
		}
	}
	if m.Entry != "" {
		if f, ok := funcs[m.Entry]; ok {
			if len(f.Params) > 6 {
				return fmt.Errorf("ir: entry @%s has more than 6 parameters", m.Entry)
			}
		}
	}
	return nil
}

func verifyFunc(f *Func, funcs map[string]*Func) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("ir: @%s: %s", f.Name, fmt.Sprintf(format, args...))
	}
	if len(f.Blocks) == 0 {
		return errf("no blocks")
	}
	if len(f.Params) > 6 {
		return errf("more than 6 parameters")
	}
	blocks := map[string]bool{}
	for _, b := range f.Blocks {
		if b.Name == "" {
			return errf("block with empty name")
		}
		if blocks[b.Name] {
			return errf("duplicate block %s", b.Name)
		}
		blocks[b.Name] = true
	}
	defined := map[string]bool{}
	for _, p := range f.Params {
		if p.Name == "" {
			return errf("parameter with empty name")
		}
		if defined[p.Name] {
			return errf("duplicate name %%%s", p.Name)
		}
		defined[p.Name] = true
	}
	for _, b := range f.Blocks {
		if len(b.Insts) == 0 {
			return errf("block %s is empty", b.Name)
		}
		for i, in := range b.Insts {
			isLast := i == len(b.Insts)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return errf("block %s does not end with a terminator", b.Name)
				}
				return errf("block %s has terminator %s mid-block", b.Name, in.Op)
			}
			if err := verifyInst(f, b, in, defined, blocks, funcs); err != nil {
				return err
			}
			if in.Name != "" {
				if defined[in.Name] {
					return errf("block %s: redefinition of %%%s", b.Name, in.Name)
				}
				defined[in.Name] = true
			}
		}
	}
	return nil
}

func verifyInst(f *Func, b *Block, in *Inst, defined, blocks map[string]bool, funcs map[string]*Func) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("ir: @%s/%s: %s", f.Name, b.Name, fmt.Sprintf(format, args...))
	}
	for _, a := range in.Args {
		switch v := a.(type) {
		case Const:
		case *Param:
			if !defined[v.Name] {
				return errf("%s uses undefined %%%s", in.Op, v.Name)
			}
		case *Inst:
			if v.Name == "" {
				return errf("%s uses a void instruction as operand", in.Op)
			}
			if !defined[v.Name] {
				return errf("%s uses %%%s before its definition", in.Op, v.Name)
			}
		default:
			return errf("%s has operand of unknown kind %T", in.Op, a)
		}
	}
	wantArgs := func(n int) error {
		if len(in.Args) != n {
			return errf("%s expects %d operands, has %d", in.Op, n, len(in.Args))
		}
		return nil
	}
	wantResult := func(want bool) error {
		if want && in.Name == "" {
			return errf("%s must name its result", in.Op)
		}
		if !want && in.Name != "" {
			return errf("%s cannot name a result", in.Op)
		}
		return nil
	}
	switch {
	case in.Op.IsBinary():
		if err := wantArgs(2); err != nil {
			return err
		}
		return wantResult(true)
	case in.Op == OpICmp, in.Op == OpGEP:
		if err := wantArgs(2); err != nil {
			return err
		}
		return wantResult(true)
	case in.Op == OpLoad:
		if err := wantArgs(1); err != nil {
			return err
		}
		return wantResult(true)
	case in.Op == OpAlloca:
		if in.NSlots <= 0 {
			return errf("alloca with non-positive slot count %d", in.NSlots)
		}
		if err := wantArgs(0); err != nil {
			return err
		}
		return wantResult(true)
	case in.Op == OpStore, in.Op == OpCheck:
		if err := wantArgs(2); err != nil {
			return err
		}
		return wantResult(false)
	case in.Op == OpBr:
		if len(in.Targets) != 1 || !blocks[in.Targets[0]] {
			return errf("br to unknown block %v", in.Targets)
		}
		return wantResult(false)
	case in.Op == OpCondBr:
		if err := wantArgs(1); err != nil {
			return err
		}
		if len(in.Targets) != 2 || !blocks[in.Targets[0]] || !blocks[in.Targets[1]] {
			return errf("conditional br to unknown block %v", in.Targets)
		}
		return wantResult(false)
	case in.Op == OpCall:
		callee, ok := funcs[in.Callee]
		if !ok {
			return errf("call to unknown function @%s", in.Callee)
		}
		if len(in.Args) != len(callee.Params) {
			return errf("call @%s with %d args, wants %d", in.Callee, len(in.Args), len(callee.Params))
		}
		return nil
	case in.Op == OpRet:
		if len(in.Args) > 1 {
			return errf("ret with %d operands", len(in.Args))
		}
		return wantResult(false)
	case in.Op == OpOut:
		if err := wantArgs(1); err != nil {
			return err
		}
		return wantResult(false)
	}
	return errf("unknown opcode %d", in.Op)
}
