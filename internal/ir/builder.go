package ir

import "fmt"

// Builder constructs modules programmatically with automatic name
// generation and structural bookkeeping, as an alternative to writing IR
// text. Finish with Module, which verifies the result:
//
//	b := ir.NewBuilder()
//	f := b.Func("main", "n")
//	entry := f.Entry()
//	sq := entry.Bin(OpMul, f.Param("n"), f.Param("n"))
//	entry.Out(sq)
//	entry.Ret(sq)
//	mod, err := b.Module()
type Builder struct {
	mod     *Module
	nameSeq int
}

// NewBuilder returns an empty builder with entry function "main".
func NewBuilder() *Builder {
	return &Builder{mod: &Module{Entry: "main"}}
}

// SetEntry overrides the module entry function name.
func (b *Builder) SetEntry(name string) { b.mod.Entry = name }

// Func starts a new function with the given parameter names and returns
// its builder. The entry block is created automatically.
func (b *Builder) Func(name string, params ...string) *FuncBuilder {
	f := &Func{Name: name}
	for i, p := range params {
		f.Params = append(f.Params, &Param{Name: p, Index: i})
	}
	entry := &Block{Name: "entry"}
	f.Blocks = []*Block{entry}
	b.mod.Funcs = append(b.mod.Funcs, f)
	return &FuncBuilder{b: b, f: f}
}

// Module verifies and returns the built module.
func (b *Builder) Module() (*Module, error) {
	if err := Verify(b.mod); err != nil {
		return nil, fmt.Errorf("ir: builder produced invalid module: %w", err)
	}
	return b.mod, nil
}

func (b *Builder) fresh(prefix string) string {
	b.nameSeq++
	return fmt.Sprintf("%s.%d", prefix, b.nameSeq)
}

// FuncBuilder builds one function.
type FuncBuilder struct {
	b *Builder
	f *Func
}

// Param returns the named parameter value.
func (fb *FuncBuilder) Param(name string) Value {
	for _, p := range fb.f.Params {
		if p.Name == name {
			return p
		}
	}
	panic(fmt.Sprintf("ir: no parameter %%%s in @%s", name, fb.f.Name))
}

// Entry returns the entry block's builder.
func (fb *FuncBuilder) Entry() *BlockBuilder {
	return &BlockBuilder{fb: fb, blk: fb.f.Blocks[0]}
}

// Block creates a new named block and returns its builder. An empty name
// generates a fresh one.
func (fb *FuncBuilder) Block(name string) *BlockBuilder {
	if name == "" {
		name = fb.b.fresh("bb")
	}
	blk := &Block{Name: name}
	fb.f.Blocks = append(fb.f.Blocks, blk)
	return &BlockBuilder{fb: fb, blk: blk}
}

// Alloca reserves n frame words in the entry block (the required position
// for allocas) and returns the address value.
func (fb *FuncBuilder) Alloca(n int64) Value {
	in := &Inst{Op: OpAlloca, Name: fb.b.fresh("slot"), NSlots: n}
	entry := fb.f.Blocks[0]
	entry.Insts = append([]*Inst{in}, entry.Insts...)
	return in
}

// BlockBuilder appends instructions to one block.
type BlockBuilder struct {
	fb  *FuncBuilder
	blk *Block
}

// Name returns the block's label.
func (bb *BlockBuilder) Name() string { return bb.blk.Name }

func (bb *BlockBuilder) push(in *Inst) *Inst {
	bb.blk.Insts = append(bb.blk.Insts, in)
	return in
}

// Bin emits a binary operation and returns its result.
func (bb *BlockBuilder) Bin(op Op, a, v Value) Value {
	if !op.IsBinary() {
		panic(fmt.Sprintf("ir: %s is not a binary op", op))
	}
	return bb.push(&Inst{Op: op, Name: bb.fb.b.fresh("v"), Args: []Value{a, v}})
}

// ICmp emits a comparison producing 0 or 1.
func (bb *BlockBuilder) ICmp(pred Pred, a, v Value) Value {
	return bb.push(&Inst{Op: OpICmp, Name: bb.fb.b.fresh("c"), Pred: pred, Args: []Value{a, v}})
}

// Load emits a load from the address value.
func (bb *BlockBuilder) Load(addr Value) Value {
	return bb.push(&Inst{Op: OpLoad, Name: bb.fb.b.fresh("l"), Args: []Value{addr}})
}

// Store emits a store of v to the address.
func (bb *BlockBuilder) Store(v, addr Value) {
	bb.push(&Inst{Op: OpStore, Args: []Value{v, addr}})
}

// GEP emits base + 8*index address arithmetic.
func (bb *BlockBuilder) GEP(base, index Value) Value {
	return bb.push(&Inst{Op: OpGEP, Name: bb.fb.b.fresh("p"), Args: []Value{base, index}})
}

// Call emits a call whose result is captured.
func (bb *BlockBuilder) Call(callee string, args ...Value) Value {
	return bb.push(&Inst{Op: OpCall, Name: bb.fb.b.fresh("r"), Callee: callee, Args: args})
}

// CallVoid emits a call whose result is discarded.
func (bb *BlockBuilder) CallVoid(callee string, args ...Value) {
	bb.push(&Inst{Op: OpCall, Callee: callee, Args: args})
}

// Out emits a program output.
func (bb *BlockBuilder) Out(v Value) {
	bb.push(&Inst{Op: OpOut, Args: []Value{v}})
}

// Check emits the EDDI checker intrinsic.
func (bb *BlockBuilder) Check(a, v Value) {
	bb.push(&Inst{Op: OpCheck, Args: []Value{a, v}})
}

// Br emits an unconditional branch to the target block.
func (bb *BlockBuilder) Br(target *BlockBuilder) {
	bb.push(&Inst{Op: OpBr, Targets: []string{target.blk.Name}})
}

// CondBr emits a conditional branch.
func (bb *BlockBuilder) CondBr(cond Value, then, els *BlockBuilder) {
	bb.push(&Inst{Op: OpCondBr, Args: []Value{cond}, Targets: []string{then.blk.Name, els.blk.Name}})
}

// Ret emits a valued return.
func (bb *BlockBuilder) Ret(v Value) {
	bb.push(&Inst{Op: OpRet, Args: []Value{v}})
}

// RetVoid emits a void return.
func (bb *BlockBuilder) RetVoid() {
	bb.push(&Inst{Op: OpRet})
}

// Loop builds a counting loop `for i = 0; i < limit; i++` rooted at the
// receiver: it allocates a counter slot, emits the header and exit blocks,
// and calls body with a builder for the loop body and the induction value.
// If the body introduces its own control flow it must return the builder
// of the block where straight-line execution continues (returning nil
// means the body block itself). Loop returns the exit block's builder.
func (bb *BlockBuilder) Loop(limit Value, body func(*BlockBuilder, Value) *BlockBuilder) *BlockBuilder {
	fb := bb.fb
	ctr := fb.Alloca(1)
	bb.Store(Const(0), ctr)
	head := fb.Block("")
	bodyB := fb.Block("")
	exit := fb.Block("")
	bb.Br(head)
	iv := head.Load(ctr)
	cond := head.ICmp(PredSLT, iv, limit)
	head.CondBr(cond, bodyB, exit)
	cont := body(bodyB, iv)
	if cont == nil {
		cont = bodyB
	}
	next := cont.Bin(OpAdd, iv, Const(1))
	cont.Store(next, ctr)
	cont.Br(head)
	return exit
}
