package ir

import (
	"reflect"
	"testing"
)

const fibSrc = `
func @fib(%n) {
entry:
  %c = icmp sle %n, 1
  br %c, base, rec
base:
  ret %n
rec:
  %n1 = sub %n, 1
  %n2 = sub %n, 2
  %a = call @fib(%n1)
  %b = call @fib(%n2)
  %r = add %a, %b
  ret %r
}

func @main(%n) {
entry:
  %r = call @fib(%n)
  out %r
  ret %r
}
`

const stepCap = 20_000

func newTestInterp(t *testing.T, src string) *Interp {
	t.Helper()
	ip, err := NewInterp(mustParse(t, src), memSize)
	if err != nil {
		t.Fatalf("NewInterp: %v", err)
	}
	return ip
}

func sameRunResult(t *testing.T, got, want RunResult, ctx string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: resumed result differs\ngot  %+v\nwant %+v", ctx, got, want)
	}
}

// TestIRSnapshotResumeEquivalence pins the tentpole invariant at IR level
// on a memory-heavy loop: any faulted run resumed from a snapshot at or
// before its site is bit-identical to the same run from scratch.
func TestIRSnapshotResumeEquivalence(t *testing.T) {
	ip := newTestInterp(t, sumSrc)
	args := []uint64{12}
	golden := ip.Run(RunOpts{Args: args, MaxSteps: stepCap})
	if golden.Outcome != OutcomeOK || golden.Sites == 0 {
		t.Fatalf("golden = %+v", golden)
	}
	for _, every := range []uint64{1, 5, golden.Sites} {
		var snaps []*Snapshot
		ip.Run(RunOpts{Args: args, MaxSteps: stepCap, CheckpointEvery: every, OnCheckpoint: func(s *Snapshot) {
			snaps = append(snaps, s)
		}})
		if len(snaps) == 0 {
			t.Fatalf("K=%d: no snapshots", every)
		}
		for site := uint64(0); site < golden.Sites; site++ {
			for _, bit := range []uint{0, 13, 63} {
				f := &Fault{Site: site, Bit: bit}
				direct := ip.Run(RunOpts{Args: args, Fault: f, MaxSteps: stepCap})
				var snap *Snapshot
				for _, s := range snaps {
					if s.Sites() <= site {
						snap = s
					}
				}
				if snap == nil {
					continue
				}
				resumed := ip.Run(RunOpts{Fault: f, Resume: snap, MaxSteps: stepCap})
				sameRunResult(t, resumed, direct, "sum loop")
			}
		}
	}
}

// TestIRSnapshotRecursion snapshots mid-recursion, so multiple frames (and
// their environments and saved stack pointers) must round-trip.
func TestIRSnapshotRecursion(t *testing.T) {
	ip := newTestInterp(t, fibSrc)
	args := []uint64{9}
	golden := ip.Run(RunOpts{Args: args, MaxSteps: stepCap})
	if golden.Outcome != OutcomeOK || golden.Output[0] != 34 {
		t.Fatalf("golden = %+v", golden)
	}
	var snaps []*Snapshot
	ip.Run(RunOpts{Args: args, MaxSteps: stepCap, CheckpointEvery: 3, OnCheckpoint: func(s *Snapshot) {
		snaps = append(snaps, s)
	}})
	// Restore into a *different* interpreter instance (the worker-pool
	// pattern) and check clean and faulted resumes.
	ip2 := newTestInterp(t, fibSrc)
	for _, snap := range snaps {
		clean := ip2.Run(RunOpts{Resume: snap, MaxSteps: stepCap})
		if clean.Outcome != OutcomeOK || clean.Output[0] != 34 {
			t.Fatalf("clean resume from sites=%d: %+v", snap.Sites(), clean)
		}
		f := &Fault{Site: snap.Sites(), Bit: 1} // fault exactly on the snapshot site
		direct := ip.Run(RunOpts{Args: args, Fault: f, MaxSteps: stepCap})
		resumed := ip2.Run(RunOpts{Fault: f, Resume: snap, MaxSteps: stepCap})
		sameRunResult(t, resumed, direct, "fib")
	}
}

// TestIRSnapshotImmutable checks that a resumed run cannot mutate the
// snapshot it started from: two successive resumes from one snapshot give
// identical results even though the first faulted run scribbled on memory
// and its environments.
func TestIRSnapshotImmutable(t *testing.T) {
	ip := newTestInterp(t, sumSrc)
	args := []uint64{20}
	var snaps []*Snapshot
	ip.Run(RunOpts{Args: args, MaxSteps: stepCap, CheckpointEvery: 10, OnCheckpoint: func(s *Snapshot) {
		snaps = append(snaps, s)
	}})
	snap := snaps[0]
	f := &Fault{Site: snap.Sites() + 2, Bit: 60}
	first := ip.Run(RunOpts{Fault: f, Resume: snap, MaxSteps: stepCap})
	second := ip.Run(RunOpts{Fault: f, Resume: snap, MaxSteps: stepCap})
	sameRunResult(t, second, first, "repeat resume")
}

// TestIRRestoreMismatch rejects snapshots from a different configuration.
func TestIRRestoreMismatch(t *testing.T) {
	ip := newTestInterp(t, sumSrc)
	var snaps []*Snapshot
	ip.Run(RunOpts{Args: []uint64{6}, MaxSteps: stepCap, CheckpointEvery: 1, OnCheckpoint: func(s *Snapshot) {
		snaps = append(snaps, s)
	}})
	other, err := NewInterp(mustParse(t, sumSrc), memSize*2)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snaps[0]); err == nil {
		t.Fatal("restore across memory sizes accepted")
	}
	foreign := newTestInterp(t, fibSrc)
	r := foreign.Run(RunOpts{Resume: snaps[0], MaxSteps: stepCap})
	if r.Outcome != OutcomeCrash {
		t.Fatalf("resume into foreign module = %v", r.Outcome)
	}
}

// TestIRDirtyPageReset pins the shared satellite: repeated runs with
// dirty-page resets stay correct, including across SetMemImage.
func TestIRDirtyPageReset(t *testing.T) {
	ip := newTestInterp(t, sumSrc)
	args := []uint64{15}
	first := ip.Run(RunOpts{Args: args, MaxSteps: stepCap})
	for i := 0; i < 3; i++ {
		sameRunResult(t, ip.Run(RunOpts{Args: args, MaxSteps: stepCap}), first, "repeat run")
	}
	if err := ip.WriteWordImage(GuardSize, 7); err != nil {
		t.Fatal(err)
	}
	// The poked word is outside what the program reads, so the result is
	// unchanged — but only if the reset resynced correctly.
	sameRunResult(t, ip.Run(RunOpts{Args: args, MaxSteps: stepCap}), first, "after SetMemImage")
}
