// Package ir defines the reproduction's LLVM-like intermediate
// representation: 64-bit integer values, alloca/load/store memory access,
// explicit basic blocks, and the textual form the Rodinia kernels are
// written in. The IR is the layer at which IR-LEVEL-EDDI (the paper's first
// baseline) and the hybrid baseline's signature protection operate, and the
// layer the backend compiles to assembly.
package ir

import "fmt"

// Op is an IR opcode.
type Op uint8

// IR opcodes. All values are 64-bit signed integers; memory is addressed in
// bytes, and load/store move 8-byte words.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
	OpICmp   // result 0/1 per Pred
	OpAlloca // allocate NSlots 8-byte words in the frame; result = address
	OpLoad   // load word at Args[0]
	OpStore  // store Args[0] to address Args[1]
	OpGEP    // Args[0] + 8*Args[1]
	OpBr     // unconditional: Targets[0]
	OpCondBr // Args[0] != 0 ? Targets[0] : Targets[1]
	OpCall   // call Callee(Args...); Name may capture the return value
	OpRet    // return Args[0] (or void with no args)
	OpOut    // emit Args[0] to the program output stream
	OpCheck  // EDDI checker intrinsic: detect if Args[0] != Args[1]

	numOps
)

var opNames = [numOps]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr",
	OpAShr: "ashr", OpICmp: "icmp", OpAlloca: "alloca", OpLoad: "load",
	OpStore: "store", OpGEP: "gep", OpBr: "br", OpCondBr: "br",
	OpCall: "call", OpRet: "ret", OpOut: "out", OpCheck: "check",
}

// String returns the mnemonic.
func (op Op) String() string {
	if op < numOps {
		return opNames[op]
	}
	return fmt.Sprintf("irop?%d", op)
}

// IsBinary reports whether op is a two-operand arithmetic/logic operation.
func (op Op) IsBinary() bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor,
		OpShl, OpLShr, OpAShr:
		return true
	}
	return false
}

// HasResult reports whether an instruction with this opcode produces a
// value.
func (op Op) HasResult() bool {
	switch op {
	case OpStore, OpBr, OpCondBr, OpRet, OpOut, OpCheck:
		return false
	case OpCall:
		return true // optional; Inst.Name == "" means result discarded
	}
	return true
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	switch op {
	case OpBr, OpCondBr, OpRet:
		return true
	}
	return false
}

// Pred is an integer comparison predicate.
type Pred uint8

// Comparison predicates (signed).
const (
	PredEQ Pred = iota
	PredNE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
	numPreds
)

var predNames = [numPreds]string{"eq", "ne", "slt", "sle", "sgt", "sge"}

// String returns the predicate mnemonic.
func (p Pred) String() string {
	if p < numPreds {
		return predNames[p]
	}
	return fmt.Sprintf("pred?%d", p)
}

// LookupPred resolves a predicate mnemonic.
func LookupPred(s string) (Pred, bool) {
	for i, n := range predNames {
		if n == s {
			return Pred(i), true
		}
	}
	return 0, false
}

// Eval applies the predicate to two signed values.
func (p Pred) Eval(a, b int64) bool {
	switch p {
	case PredEQ:
		return a == b
	case PredNE:
		return a != b
	case PredSLT:
		return a < b
	case PredSLE:
		return a <= b
	case PredSGT:
		return a > b
	case PredSGE:
		return a >= b
	}
	return false
}

// Value is an operand: a constant, a function parameter, or the result of
// an instruction.
type Value interface {
	// OperandString renders the value as it appears in operand position.
	OperandString() string
}

// Const is an integer literal operand.
type Const int64

// OperandString renders the literal.
func (c Const) OperandString() string { return fmt.Sprintf("%d", int64(c)) }

// Param is a function parameter.
type Param struct {
	Name  string
	Index int
}

// OperandString renders the parameter reference.
func (p *Param) OperandString() string { return "%" + p.Name }

// Prov records an instruction's provenance: original program code, or a
// duplicate/check inserted by an IR-level protection pass. The backend
// propagates it into the assembly tags so dynamic profiles can attribute
// overhead (see machine.Profile).
type Prov uint8

// Instruction provenance.
const (
	ProvProgram Prov = iota
	ProvDup
	ProvCheck
)

// Inst is one IR instruction. Instructions with results double as values.
type Inst struct {
	Op      Op
	Name    string // result name without %, "" for void
	Pred    Pred   // OpICmp
	Args    []Value
	Callee  string   // OpCall
	Targets []string // OpBr (1), OpCondBr (2)
	NSlots  int64    // OpAlloca
	Prov    Prov     // origin of this instruction
}

// OperandString renders a reference to the instruction's result.
func (in *Inst) OperandString() string { return "%" + in.Name }

// Block is a named basic block.
type Block struct {
	Name  string
	Insts []*Inst
}

// Terminator returns the block's final instruction if it is a terminator.
func (b *Block) Terminator() *Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	t := b.Insts[len(b.Insts)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Func is an IR function. Blocks[0] is the entry block.
type Func struct {
	Name   string
	Params []*Param
	Blocks []*Block
}

// Block returns the named block, or nil.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// InstCount reports the number of instructions in the function.
func (f *Func) InstCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Module is a compilation unit: a set of functions plus the entry function
// name (default "main").
type Module struct {
	Funcs []*Func
	Entry string
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// InstCount reports the number of instructions in the module.
func (m *Module) InstCount() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.InstCount()
	}
	return n
}
