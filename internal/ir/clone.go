package ir

// Clone deep-copies a module, remapping all value references so the copy
// shares no mutable state with the original. Protection passes transform
// clones, leaving the caller's module intact.
func Clone(m *Module) *Module {
	nm := &Module{Entry: m.Entry}
	for _, f := range m.Funcs {
		nm.Funcs = append(nm.Funcs, cloneFunc(f))
	}
	return nm
}

func cloneFunc(f *Func) *Func {
	nf := &Func{Name: f.Name}
	remap := map[Value]Value{}
	for _, p := range f.Params {
		np := &Param{Name: p.Name, Index: p.Index}
		nf.Params = append(nf.Params, np)
		remap[p] = np
	}
	// First pass: create instruction shells so forward identity exists.
	instMap := map[*Inst]*Inst{}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			ni := &Inst{
				Op:      in.Op,
				Name:    in.Name,
				Pred:    in.Pred,
				Callee:  in.Callee,
				Targets: append([]string(nil), in.Targets...),
				NSlots:  in.NSlots,
				Prov:    in.Prov,
			}
			instMap[in] = ni
			remap[in] = ni
		}
	}
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name}
		for _, in := range b.Insts {
			ni := instMap[in]
			for _, a := range in.Args {
				if mapped, ok := remap[a]; ok {
					ni.Args = append(ni.Args, mapped)
				} else {
					ni.Args = append(ni.Args, a) // Const
				}
			}
			nb.Insts = append(nb.Insts, ni)
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}
