package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module in the textual form Print emits. Values must be
// defined before use in layout order (the IR has no phi nodes; loops carry
// values through memory, as unoptimised compiler output does).
func Parse(src string) (*Module, error) {
	p := &irParser{}
	if err := p.parse(src); err != nil {
		return nil, err
	}
	if err := Verify(p.mod); err != nil {
		return nil, err
	}
	return p.mod, nil
}

type irParser struct {
	mod    *Module
	fn     *Func
	block  *Block
	values map[string]Value
	lineNo int
}

func (p *irParser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", p.lineNo, fmt.Sprintf(format, args...))
}

func (p *irParser) parse(src string) error {
	p.mod = &Module{Entry: "main"}
	for i, raw := range strings.Split(src, "\n") {
		p.lineNo = i + 1
		line := raw
		if idx := strings.IndexByte(line, ';'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "func "):
			if p.fn != nil {
				return p.errf("nested func")
			}
			if err := p.parseFuncHeader(line); err != nil {
				return err
			}
		case line == "}":
			if p.fn == nil {
				return p.errf("} outside function")
			}
			p.fn, p.block, p.values = nil, nil, nil
		case strings.HasSuffix(line, ":"):
			if p.fn == nil {
				return p.errf("block label outside function")
			}
			name := strings.TrimSuffix(line, ":")
			p.block = &Block{Name: name}
			p.fn.Blocks = append(p.fn.Blocks, p.block)
		default:
			if p.block == nil {
				return p.errf("instruction outside block: %q", line)
			}
			in, err := p.parseInst(line)
			if err != nil {
				return err
			}
			p.block.Insts = append(p.block.Insts, in)
			if in.Name != "" {
				if _, dup := p.values[in.Name]; dup {
					return p.errf("redefinition of %%%s", in.Name)
				}
				p.values[in.Name] = in
			}
		}
	}
	if p.fn != nil {
		return fmt.Errorf("ir: unterminated function %q", p.fn.Name)
	}
	return nil
}

func (p *irParser) parseFuncHeader(line string) error {
	// func @name(%a, %b) {
	rest := strings.TrimPrefix(line, "func ")
	if !strings.HasSuffix(rest, "{") {
		return p.errf("func header must end with '{'")
	}
	rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return p.errf("malformed func header")
	}
	name := strings.TrimSpace(rest[:open])
	if !strings.HasPrefix(name, "@") || len(name) < 2 {
		return p.errf("function name must start with @")
	}
	p.fn = &Func{Name: name[1:]}
	p.values = map[string]Value{}
	for _, ps := range splitArgs(rest[open+1 : closeIdx]) {
		ps = strings.TrimSpace(ps)
		if ps == "" {
			continue
		}
		if !strings.HasPrefix(ps, "%") {
			return p.errf("parameter %q must start with %%", ps)
		}
		param := &Param{Name: ps[1:], Index: len(p.fn.Params)}
		if _, dup := p.values[param.Name]; dup {
			return p.errf("duplicate parameter %%%s", param.Name)
		}
		p.fn.Params = append(p.fn.Params, param)
		p.values[param.Name] = param
	}
	p.mod.Funcs = append(p.mod.Funcs, p.fn)
	p.block = nil
	return nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func (p *irParser) value(tok string) (Value, error) {
	tok = strings.TrimSpace(tok)
	if strings.HasPrefix(tok, "%") {
		v, ok := p.values[tok[1:]]
		if !ok {
			return nil, p.errf("use of undefined value %s", tok)
		}
		return v, nil
	}
	n, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return nil, p.errf("bad operand %q", tok)
	}
	return Const(n), nil
}

func (p *irParser) values2(rest string) (Value, Value, error) {
	parts := splitArgs(rest)
	if len(parts) != 2 {
		return nil, nil, p.errf("expected two operands, got %q", rest)
	}
	a, err := p.value(parts[0])
	if err != nil {
		return nil, nil, err
	}
	b, err := p.value(parts[1])
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

func (p *irParser) parseInst(line string) (*Inst, error) {
	name := ""
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, p.errf("missing '=' in %q", line)
		}
		name = strings.TrimSpace(line[1:eq])
		name = strings.TrimPrefix(name, "%")
		line = strings.TrimSpace(line[eq+1:])
	}
	op := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		op, rest = line[:i], strings.TrimSpace(line[i+1:])
	}

	mk := func(o Op, args ...Value) *Inst { return &Inst{Op: o, Name: name, Args: args} }

	binOps := map[string]Op{
		"add": OpAdd, "sub": OpSub, "mul": OpMul, "sdiv": OpSDiv,
		"srem": OpSRem, "and": OpAnd, "or": OpOr, "xor": OpXor,
		"shl": OpShl, "lshr": OpLShr, "ashr": OpAShr,
	}
	if o, ok := binOps[op]; ok {
		a, b, err := p.values2(rest)
		if err != nil {
			return nil, err
		}
		return p.named(mk(o, a, b))
	}

	switch op {
	case "icmp":
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return nil, p.errf("icmp needs a predicate")
		}
		pred, ok := LookupPred(rest[:sp])
		if !ok {
			return nil, p.errf("unknown predicate %q", rest[:sp])
		}
		a, b, err := p.values2(rest[sp+1:])
		if err != nil {
			return nil, err
		}
		in := mk(OpICmp, a, b)
		in.Pred = pred
		return p.named(in)
	case "alloca":
		n, err := strconv.ParseInt(strings.TrimSpace(rest), 0, 64)
		if err != nil || n <= 0 {
			return nil, p.errf("alloca needs a positive slot count")
		}
		in := mk(OpAlloca)
		in.NSlots = n
		return p.named(in)
	case "load":
		a, err := p.value(rest)
		if err != nil {
			return nil, err
		}
		return p.named(mk(OpLoad, a))
	case "store":
		a, b, err := p.values2(rest)
		if err != nil {
			return nil, err
		}
		return p.void(mk(OpStore, a, b))
	case "gep":
		a, b, err := p.values2(rest)
		if err != nil {
			return nil, err
		}
		return p.named(mk(OpGEP, a, b))
	case "br":
		parts := splitArgs(rest)
		switch len(parts) {
		case 1:
			in := mk(OpBr)
			in.Targets = []string{strings.TrimSpace(parts[0])}
			return p.void(in)
		case 3:
			c, err := p.value(parts[0])
			if err != nil {
				return nil, err
			}
			in := mk(OpCondBr, c)
			in.Targets = []string{strings.TrimSpace(parts[1]), strings.TrimSpace(parts[2])}
			return p.void(in)
		default:
			return nil, p.errf("br needs 1 or 3 operands")
		}
	case "call":
		open := strings.IndexByte(rest, '(')
		closeIdx := strings.LastIndexByte(rest, ')')
		if open < 0 || closeIdx < open || !strings.HasPrefix(rest, "@") {
			return nil, p.errf("malformed call %q", rest)
		}
		in := mk(OpCall)
		in.Callee = rest[1:open]
		for _, as := range splitArgs(rest[open+1 : closeIdx]) {
			v, err := p.value(as)
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, v)
		}
		return in, nil // name optional for call
	case "ret":
		in := mk(OpRet)
		if strings.TrimSpace(rest) != "" {
			v, err := p.value(rest)
			if err != nil {
				return nil, err
			}
			in.Args = []Value{v}
		}
		return p.void(in)
	case "out":
		v, err := p.value(rest)
		if err != nil {
			return nil, err
		}
		return p.void(mk(OpOut, v))
	case "check":
		a, b, err := p.values2(rest)
		if err != nil {
			return nil, err
		}
		return p.void(mk(OpCheck, a, b))
	}
	return nil, p.errf("unknown instruction %q", op)
}

func (p *irParser) named(in *Inst) (*Inst, error) {
	if in.Name == "" {
		return nil, p.errf("%s must name its result", in.Op)
	}
	return in, nil
}

func (p *irParser) void(in *Inst) (*Inst, error) {
	if in.Name != "" {
		return nil, p.errf("%s produces no result", in.Op)
	}
	return in, nil
}
