package ir

import "fmt"

// Dirty-page tracking granularity, matching internal/machine so the two
// levels have comparable snapshot costs.
const (
	pageShift = 9 // 512-byte pages
	pageSize  = 1 << pageShift
)

// markDirty records that [addr, addr+size) has been written. Callers have
// already bounds-checked the access.
func (ip *Interp) markDirty(addr, size uint64) {
	for p := addr >> pageShift; p <= (addr+size-1)>>pageShift; p++ {
		if !ip.dirty[p] {
			ip.dirty[p] = true
			ip.dirtyPages = append(ip.dirtyPages, int32(p))
		}
	}
}

// restoreMem brings working memory back to the pristine image. When the
// image is unchanged since the last sync only the dirtied pages are copied;
// after SetMemImage the whole image is re-synced once.
func (ip *Interp) restoreMem() {
	if !ip.memSynced {
		copy(ip.mem, ip.memImage)
		for _, p := range ip.dirtyPages {
			ip.dirty[p] = false
		}
		ip.dirtyPages = ip.dirtyPages[:0]
		ip.memSynced = true
		return
	}
	for _, p := range ip.dirtyPages {
		lo := int(p) << pageShift
		hi := lo + pageSize
		if hi > len(ip.mem) {
			hi = len(ip.mem)
		}
		copy(ip.mem[lo:hi], ip.memImage[lo:hi])
		ip.dirty[p] = false
	}
	ip.dirtyPages = ip.dirtyPages[:0]
}

// snapFrame is one serialised activation record: function and block are
// stored by name, and the register file is stored as a name-keyed value
// map, so a snapshot is independent of the decode stage's slot numbering
// and can be restored into any interpreter built from an equal module —
// including one whose engine version assigns slots differently.
type snapFrame struct {
	fn      string
	block   string
	idx     int
	env     map[string]uint64
	savedSP uint64
}

// Snapshot is a self-contained copy of an Interp's mid-run state: the call
// stack (with per-frame environments), sp, counters, output, and the memory
// pages dirtied since the run began (a delta against the pristine image).
// It is immutable after capture and safe to restore concurrently into
// different interpreters sharing the same module and image.
type Snapshot struct {
	frames []snapFrame
	sp     uint64

	output   []uint64
	steps    uint64
	sites    uint64
	injected bool
	injStep  uint64

	pages   []snapPage
	memSize int
}

type snapPage struct {
	idx  int32
	data []byte
}

// Sites reports the number of dynamic fault-injection sites executed before
// the snapshot was taken; a resumed run can only reach fault sites >= this.
func (s *Snapshot) Sites() uint64 { return s.sites }

// Steps reports the dynamic instructions executed before the snapshot —
// the work a resumed run skips.
func (s *Snapshot) Steps() uint64 { return s.steps }

// MemBytes reports the bytes of dirtied memory the snapshot carries, the
// dominant cost of a restore.
func (s *Snapshot) MemBytes() int {
	n := 0
	for _, pg := range s.pages {
		n += len(pg.data)
	}
	return n
}

// Snapshot captures the interpreter's current state. Meaningful mid-run
// (via RunOpts.OnCheckpoint); the capture is relative to the current
// pristine image, so mutating the image afterwards invalidates it.
func (ip *Interp) Snapshot() *Snapshot {
	s := &Snapshot{
		frames:   make([]snapFrame, len(ip.frames)),
		sp:       ip.sp,
		output:   append([]uint64(nil), ip.output...),
		steps:    ip.steps,
		sites:    ip.sites,
		injected: ip.injected,
		injStep:  ip.injStep,
		pages:    make([]snapPage, 0, len(ip.dirtyPages)),
		memSize:  len(ip.mem),
	}
	for i := range ip.frames {
		fr := &ip.frames[i]
		env := make(map[string]uint64, len(fr.regs))
		for slot, name := range fr.df.names {
			env[name] = fr.regs[slot]
		}
		s.frames[i] = snapFrame{
			fn:      fr.df.fn.Name,
			block:   fr.df.blocks[fr.block].name,
			idx:     int(fr.idx),
			env:     env,
			savedSP: fr.savedSP,
		}
	}
	for _, p := range ip.dirtyPages {
		lo := int(p) << pageShift
		hi := lo + pageSize
		if hi > len(ip.mem) {
			hi = len(ip.mem)
		}
		s.pages = append(s.pages, snapPage{idx: p, data: append([]byte(nil), ip.mem[lo:hi]...)})
	}
	return s
}

// Restore replaces the interpreter's state with a previously captured
// snapshot. Frame value maps are decoded back into dense register files so
// the snapshot stays immutable, and function/block names are resolved
// against this interpreter's module; after Restore a resumed Run matches a
// from-scratch run that reached the same point.
func (ip *Interp) Restore(s *Snapshot) error {
	if s.memSize != len(ip.mem) {
		return fmt.Errorf("ir: snapshot mismatch (mem %d vs %d)", s.memSize, len(ip.mem))
	}
	frames := make([]frame, len(s.frames))
	for i, sf := range s.frames {
		fi, ok := ip.funcIdx[sf.fn]
		if !ok {
			return fmt.Errorf("ir: snapshot frame %d: function %q not found", i, sf.fn)
		}
		df := ip.dfuncs[fi]
		bi, ok := df.blockIdx[sf.block]
		if !ok {
			return fmt.Errorf("ir: snapshot frame %d: block %q not found in @%s", i, sf.block, sf.fn)
		}
		regs := make([]uint64, df.nregs)
		for name, v := range sf.env {
			if slot, ok := df.slotOf[name]; ok {
				regs[slot] = v
			}
		}
		frames[i] = frame{
			df:      df,
			block:   bi,
			idx:     int32(sf.idx),
			regs:    regs,
			savedSP: sf.savedSP,
		}
	}
	ip.restoreMem()
	ip.recycleFrames()
	for _, pg := range s.pages {
		lo := int(pg.idx) << pageShift
		copy(ip.mem[lo:lo+len(pg.data)], pg.data)
		if !ip.dirty[pg.idx] {
			ip.dirty[pg.idx] = true
			ip.dirtyPages = append(ip.dirtyPages, pg.idx)
		}
	}
	ip.frames = append(ip.frames, frames...)
	ip.sp = s.sp
	ip.output = append(ip.output[:0], s.output...)
	ip.steps, ip.sites, ip.injected = s.steps, s.sites, s.injected
	ip.injStep = s.injStep
	return nil
}
