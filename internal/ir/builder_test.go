package ir

import (
	"strings"
	"testing"
)

func TestBuilderSumOfSquares(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main", "n")
	acc := f.Alloca(1)
	entry := f.Entry()
	entry.Store(Const(0), acc)
	exit := entry.Loop(f.Param("n"), func(body *BlockBuilder, iv Value) *BlockBuilder {
		sq := body.Bin(OpMul, iv, iv)
		old := body.Load(acc)
		body.Store(body.Bin(OpAdd, old, sq), acc)
		return nil
	})
	total := exit.Load(acc)
	exit.Out(total)
	exit.Ret(total)
	mod, err := b.Module()
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterp(mod, memSize)
	if err != nil {
		t.Fatal(err)
	}
	res := ip.Run(RunOpts{Args: []uint64{5}})
	// 0^2 + 1^2 + ... + 4^2 = 30
	if res.Outcome != OutcomeOK || res.Output[0] != 30 {
		t.Fatalf("res = %+v (%s)\n%s", res, res.CrashMsg, mod)
	}
	// Built modules print and re-parse.
	if _, err := Parse(mod.String()); err != nil {
		t.Fatalf("built module does not re-parse: %v\n%s", err, mod)
	}
}

func TestBuilderNestedLoops(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main", "n")
	acc := f.Alloca(1)
	entry := f.Entry()
	entry.Store(Const(0), acc)
	exit := entry.Loop(f.Param("n"), func(outer *BlockBuilder, i Value) *BlockBuilder {
		inner := outer.Loop(f.Param("n"), func(body *BlockBuilder, j Value) *BlockBuilder {
			old := body.Load(acc)
			body.Store(body.Bin(OpAdd, old, Const(1)), acc)
			return nil
		})
		_ = i
		return inner
	})
	total := exit.Load(acc)
	exit.Out(total)
	exit.RetVoid()
	mod, err := b.Module()
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterp(mod, memSize)
	if err != nil {
		t.Fatal(err)
	}
	res := ip.Run(RunOpts{Args: []uint64{4}})
	if res.Outcome != OutcomeOK || res.Output[0] != 16 {
		t.Fatalf("res = %+v\n%s", res, mod)
	}
}

func TestBuilderBranchesAndCalls(t *testing.T) {
	b := NewBuilder()
	h := b.Func("abs", "x")
	he := h.Entry()
	neg := he.ICmp(PredSLT, h.Param("x"), Const(0))
	negB := h.Block("")
	posB := h.Block("")
	he.CondBr(neg, negB, posB)
	negB.Ret(negB.Bin(OpSub, Const(0), h.Param("x")))
	posB.Ret(h.Param("x"))

	f := b.Func("main", "a")
	e := f.Entry()
	r := e.Call("abs", f.Param("a"))
	e.Out(r)
	e.CallVoid("abs", Const(1))
	e.RetVoid()

	mod, err := b.Module()
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterp(mod, memSize)
	if err != nil {
		t.Fatal(err)
	}
	negSeven := int64(-7)
	res := ip.Run(RunOpts{Args: []uint64{uint64(negSeven)}})
	if res.Outcome != OutcomeOK || res.Output[0] != 7 {
		t.Fatalf("res = %+v\n%s", res, mod)
	}
}

func TestBuilderMemoryOps(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main", "base")
	e := f.Entry()
	p1 := e.GEP(f.Param("base"), Const(1))
	v := e.Load(p1)
	e.Check(v, v)
	e.Out(v)
	e.RetVoid()
	mod, err := b.Module()
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterp(mod, memSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := ip.WriteWordImage(8200, 77); err != nil {
		t.Fatal(err)
	}
	res := ip.Run(RunOpts{Args: []uint64{8192}})
	if res.Outcome != OutcomeOK || res.Output[0] != 77 {
		t.Fatalf("res = %+v", res)
	}
}

func TestBuilderRejectsInvalid(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	_ = f // entry block left unterminated
	if _, err := b.Module(); err == nil {
		t.Error("unterminated function accepted")
	}
	// Bin panics on a non-binary op.
	defer func() {
		if recover() == nil {
			t.Error("Bin accepted icmp opcode")
		}
	}()
	b2 := NewBuilder()
	f2 := b2.Func("main")
	f2.Entry().Bin(OpICmp, Const(1), Const(2))
}

func TestBuilderParamPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown parameter did not panic")
		}
	}()
	b := NewBuilder()
	f := b.Func("main", "x")
	f.Param("y")
}

func TestBuilderFreshNamesUnique(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main", "n")
	e := f.Entry()
	var names []string
	for i := 0; i < 20; i++ {
		v := e.Bin(OpAdd, f.Param("n"), Const(int64(i))).(*Inst)
		names = append(names, v.Name)
	}
	e.RetVoid()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate generated name %q", n)
		}
		seen[n] = true
	}
	if _, err := b.Module(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(names[0], "v.") {
		t.Errorf("unexpected name shape %q", names[0])
	}
}
