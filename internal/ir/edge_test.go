package ir

import (
	"strings"
	"testing"
)

func TestCloneIndependence(t *testing.T) {
	m := mustParse(t, sumSrc)
	c := Clone(m)
	if c.String() != m.String() {
		t.Fatal("clone differs textually")
	}
	// Mutating the clone leaves the original untouched.
	c.Funcs[0].Blocks[0].Insts[0].Name = "renamed"
	c.Funcs[0].Name = "other"
	if strings.Contains(m.String(), "renamed") || m.Funcs[0].Name == "other" {
		t.Error("clone shares state with original")
	}
	// Cloned instruction operands reference cloned instructions, not the
	// originals.
	orig := m.Funcs[0]
	cl := Clone(m).Funcs[0]
	for bi, b := range cl.Blocks {
		for ii, in := range b.Insts {
			for ai, a := range in.Args {
				if inst, ok := a.(*Inst); ok {
					if inst == orig.Blocks[bi].Insts[ii].Args[ai] {
						t.Fatal("clone references original instruction")
					}
				}
			}
		}
	}
}

func TestCloneKeepsProvenance(t *testing.T) {
	m := mustParse(t, sumSrc)
	m.Funcs[0].Blocks[0].Insts[0].Prov = ProvDup
	c := Clone(m)
	if c.Funcs[0].Blocks[0].Insts[0].Prov != ProvDup {
		t.Error("provenance lost in clone")
	}
}

func TestInterpAllocaStackOverflow(t *testing.T) {
	src := `
func @main() {
entry:
  %p = alloca 100000
  ret
}
`
	m := mustParse(t, src)
	ip, err := NewInterp(m, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	res := ip.Run(RunOpts{})
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want crash (stack overflow)", res.Outcome)
	}
}

func TestInterpFaultOnICmpFlipsBranch(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %c = icmp sgt %n, 100
  br %c, big, small
big:
  out 1
  ret
small:
  out 0
  ret
}
`
	m := mustParse(t, src)
	ip, err := NewInterp(m, memSize)
	if err != nil {
		t.Fatal(err)
	}
	golden := ip.Run(RunOpts{Args: []uint64{5}})
	if golden.Output[0] != 0 {
		t.Fatalf("golden = %v", golden.Output)
	}
	// Site 0 is the icmp; flipping bit 0 makes the condition true.
	res := ip.Run(RunOpts{Args: []uint64{5}, Fault: &Fault{Site: 0, Bit: 0}})
	if !res.Injected || res.Output[0] != 1 {
		t.Fatalf("fault res = %+v", res)
	}
}

func TestVerifyRejectsDeepErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Module
	}{
		{"void operand", func() *Module {
			st := &Inst{Op: OpRet}
			use := &Inst{Op: OpOut, Args: []Value{st}}
			return &Module{Funcs: []*Func{{Name: "f", Blocks: []*Block{
				{Name: "e", Insts: []*Inst{use, {Op: OpRet}}},
			}}}}
		}},
		{"seven params", func() *Module {
			f := &Func{Name: "f", Blocks: []*Block{{Name: "e", Insts: []*Inst{{Op: OpRet}}}}}
			for i := 0; i < 7; i++ {
				f.Params = append(f.Params, &Param{Name: string(rune('a' + i)), Index: i})
			}
			return &Module{Funcs: []*Func{f}}
		}},
		{"duplicate function", func() *Module {
			f := func() *Func {
				return &Func{Name: "f", Blocks: []*Block{{Name: "e", Insts: []*Inst{{Op: OpRet}}}}}
			}
			return &Module{Funcs: []*Func{f(), f()}}
		}},
		{"icmp without result", func() *Module {
			return &Module{Funcs: []*Func{{Name: "f", Blocks: []*Block{
				{Name: "e", Insts: []*Inst{
					{Op: OpICmp, Args: []Value{Const(1), Const(2)}},
					{Op: OpRet},
				}},
			}}}}
		}},
		{"store with one arg", func() *Module {
			return &Module{Funcs: []*Func{{Name: "f", Blocks: []*Block{
				{Name: "e", Insts: []*Inst{
					{Op: OpStore, Args: []Value{Const(1)}},
					{Op: OpRet},
				}},
			}}}}
		}},
		{"ret with two values", func() *Module {
			return &Module{Funcs: []*Func{{Name: "f", Blocks: []*Block{
				{Name: "e", Insts: []*Inst{{Op: OpRet, Args: []Value{Const(1), Const(2)}}}},
			}}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Verify(tc.build()); err == nil {
				t.Error("Verify accepted invalid module")
			}
		})
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpAdd.IsBinary() || OpLoad.IsBinary() || OpICmp.IsBinary() {
		t.Error("IsBinary wrong")
	}
	if !OpRet.IsTerminator() || !OpBr.IsTerminator() || OpCall.IsTerminator() {
		t.Error("IsTerminator wrong")
	}
	if OpStore.HasResult() || !OpLoad.HasResult() || !OpCall.HasResult() {
		t.Error("HasResult wrong")
	}
	if OpCheck.String() != "check" || OpGEP.String() != "gep" {
		t.Error("op names wrong")
	}
}

func TestPrinterVoidCallAndRet(t *testing.T) {
	src := `
func @g() {
entry:
  ret
}
func @main() {
entry:
  call @g()
  %r = call @g()
  out %r
  ret
}
`
	m := mustParse(t, src)
	text := m.String()
	if !strings.Contains(text, "call @g()") {
		t.Errorf("void call lost:\n%s", text)
	}
	if !strings.Contains(text, "%r = call @g()") {
		t.Errorf("named call lost:\n%s", text)
	}
	m2, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if m2.String() != text {
		t.Error("round trip mismatch")
	}
}

func TestTerminatorAccessor(t *testing.T) {
	m := mustParse(t, sumSrc)
	for _, b := range m.Funcs[0].Blocks {
		if b.Terminator() == nil {
			t.Errorf("block %s has no terminator", b.Name)
		}
	}
	empty := &Block{Name: "x"}
	if empty.Terminator() != nil {
		t.Error("empty block has terminator")
	}
}

func TestInterpRunResetsState(t *testing.T) {
	// Each Run starts from the pristine image and fresh stack even after
	// a crash or detection.
	src := `
func @main(%mode) {
entry:
  %bad = icmp eq %mode, 1
  br %bad, crash, good
crash:
  %v = load 0
  ret
good:
  out 42
  ret
}
`
	m := mustParse(t, src)
	ip, err := NewInterp(m, memSize)
	if err != nil {
		t.Fatal(err)
	}
	if res := ip.Run(RunOpts{Args: []uint64{1}}); res.Outcome != OutcomeCrash {
		t.Fatalf("first run: %v", res.Outcome)
	}
	if res := ip.Run(RunOpts{Args: []uint64{0}}); res.Outcome != OutcomeOK || res.Output[0] != 42 {
		t.Fatalf("second run: %+v", res)
	}
}

func TestInterpRecursionDepthGuard(t *testing.T) {
	src := `
func @inf(%n) {
entry:
  %r = call @inf(%n)
  ret %r
}
func @main(%n) {
entry:
  %r = call @inf(%n)
  ret %r
}
`
	m := mustParse(t, src)
	ip, err := NewInterp(m, memSize)
	if err != nil {
		t.Fatal(err)
	}
	res := ip.Run(RunOpts{Args: []uint64{1}})
	if res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want crash (depth guard)", res.Outcome)
	}
	if !strings.Contains(res.CrashMsg, "depth") {
		t.Errorf("crash msg = %q", res.CrashMsg)
	}
}
