package progen

import (
	"math/rand"
	"testing"

	"ferrum/internal/ir"
)

func TestGenerateVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		mod, err := Generate(rng, Options{Calls: i%2 == 0})
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if mod.Func("main") == nil {
			t.Fatal("no main")
		}
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		mod, err := Generate(rng, Options{Stmts: 30, Calls: true})
		if err != nil {
			t.Fatal(err)
		}
		ip, err := ir.NewInterp(mod, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 8; s++ {
			if err := ip.WriteWordImage(8192+8*uint64(s), uint64(s*3+1)); err != nil {
				t.Fatal(err)
			}
		}
		res := ip.Run(ir.RunOpts{Args: []uint64{8192, uint64(rng.Int63()), uint64(rng.Int63())}, MaxSteps: 2_000_000})
		if res.Outcome != ir.OutcomeOK {
			t.Fatalf("iteration %d: %v (%s)\n%s", i, res.Outcome, res.CrashMsg, mod)
		}
		if len(res.Output) == 0 {
			t.Fatal("no output")
		}
	}
}

func TestGeneratedProgramsRoundTripText(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mod, err := Generate(rng, Options{Calls: true})
	if err != nil {
		t.Fatal(err)
	}
	mod2, err := ir.Parse(mod.String())
	if err != nil {
		t.Fatalf("generated text does not parse: %v\n%s", err, mod)
	}
	if mod2.String() != mod.String() {
		t.Error("print/parse round trip mismatch")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(rand.New(rand.NewSource(5)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rand.New(rand.NewSource(5)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different programs")
	}
}
