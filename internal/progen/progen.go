// Package progen generates random, always-terminating IR programs for
// differential and property-based testing: the generated modules exercise
// arithmetic, guarded division, memory traffic over a scratch array,
// bounded loops, branches and helper calls, and every generated program is
// guaranteed to verify and to halt.
package progen

import (
	"fmt"
	"math/rand"

	"ferrum/internal/ir"
)

// Options bounds the generated program.
type Options struct {
	// Stmts is the approximate number of statements in main (default 20).
	Stmts int
	// ScratchSlots is the size of the in-memory scratch array the program
	// receives through its %base argument (default 8).
	ScratchSlots int
	// MaxLoopTrip bounds loop iteration counts (default 6).
	MaxLoopTrip int
	// Calls enables a generated helper function and calls to it.
	Calls bool
	// BranchDensity skews the top-level statement mix toward control flow:
	// out of every 10 top-level statements, roughly this many are branch
	// diamonds or bounded loops instead of straight-line statements.
	// The default 2 is the historical mix; values are capped at 9. Dense
	// settings generate programs made of many short basic blocks, which is
	// what stresses block-formation boundaries and superinstruction fusion
	// in the machine's dispatch tiers.
	BranchDensity int
}

func (o Options) withDefaults() Options {
	if o.Stmts <= 0 {
		o.Stmts = 20
	}
	if o.ScratchSlots <= 0 {
		o.ScratchSlots = 8
	}
	if o.MaxLoopTrip <= 0 {
		o.MaxLoopTrip = 6
	}
	if o.BranchDensity <= 0 {
		o.BranchDensity = 2
	}
	if o.BranchDensity > 9 {
		o.BranchDensity = 9
	}
	return o
}

// Generate builds a random module with entry main(%base, %a, %b). The
// caller provides a scratch array of Options.ScratchSlots words at %base.
func Generate(rng *rand.Rand, opts Options) (*ir.Module, error) {
	opts = opts.withDefaults()
	g := &gen{rng: rng, opts: opts, mod: &ir.Module{Entry: "main"}}
	if opts.Calls {
		g.buildHelper()
	}
	g.buildMain()
	if err := ir.Verify(g.mod); err != nil {
		return nil, fmt.Errorf("progen: generated invalid module: %w", err)
	}
	return g.mod, nil
}

type gen struct {
	rng  *rand.Rand
	opts Options
	mod  *ir.Module

	fn      *ir.Func
	block   *ir.Block
	nameSeq int
	pool    []ir.Value // values available as operands
	baseArg *ir.Param
}

func (g *gen) name(prefix string) string {
	g.nameSeq++
	return fmt.Sprintf("%s%d", prefix, g.nameSeq)
}

func (g *gen) emit(in *ir.Inst) *ir.Inst {
	g.block.Insts = append(g.block.Insts, in)
	return in
}

func (g *gen) pick() ir.Value {
	if len(g.pool) == 0 || g.rng.Intn(4) == 0 {
		return ir.Const(g.rng.Int63n(2000) - 1000)
	}
	return g.pool[g.rng.Intn(len(g.pool))]
}

var binOps = []ir.Op{
	ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
	ir.OpShl, ir.OpLShr, ir.OpAShr,
}

// stmt emits one random statement into the current block.
func (g *gen) stmt(depth int) {
	switch k := g.rng.Intn(10); {
	case k < 4: // arithmetic
		op := binOps[g.rng.Intn(len(binOps))]
		args := []ir.Value{g.pick(), g.pick()}
		if op == ir.OpShl || op == ir.OpLShr || op == ir.OpAShr {
			// Bounded shift counts keep results comparable.
			args[1] = ir.Const(g.rng.Int63n(16))
		}
		v := g.emit(&ir.Inst{Op: op, Name: g.name("v"), Args: args})
		g.pool = append(g.pool, v)
	case k == 4: // guarded division: divisor masked positive and odd
		masked := g.emit(&ir.Inst{Op: ir.OpAnd, Name: g.name("dm"),
			Args: []ir.Value{g.pick(), ir.Const(1023)}})
		div := g.emit(&ir.Inst{Op: ir.OpOr, Name: g.name("dv"),
			Args: []ir.Value{masked, ir.Const(1)}})
		op := ir.OpSDiv
		if g.rng.Intn(2) == 0 {
			op = ir.OpSRem
		}
		v := g.emit(&ir.Inst{Op: op, Name: g.name("q"), Args: []ir.Value{g.pick(), div}})
		g.pool = append(g.pool, v)
	case k == 5: // compare
		pred := ir.Pred(g.rng.Intn(6))
		v := g.emit(&ir.Inst{Op: ir.OpICmp, Name: g.name("c"), Pred: pred,
			Args: []ir.Value{g.pick(), g.pick()}})
		g.pool = append(g.pool, v)
	case k == 6: // store to scratch
		idx := g.scratchIndex()
		p := g.emit(&ir.Inst{Op: ir.OpGEP, Name: g.name("sp"),
			Args: []ir.Value{g.baseArg, idx}})
		g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{g.pick(), p}})
	case k == 7: // load from scratch
		idx := g.scratchIndex()
		p := g.emit(&ir.Inst{Op: ir.OpGEP, Name: g.name("lp"),
			Args: []ir.Value{g.baseArg, idx}})
		v := g.emit(&ir.Inst{Op: ir.OpLoad, Name: g.name("lv"), Args: []ir.Value{p}})
		g.pool = append(g.pool, v)
	case k == 8 && depth < 2: // branch diamond
		g.branch(depth)
	default:
		if g.opts.Calls && g.mod.Func("helper") != nil {
			v := g.emit(&ir.Inst{Op: ir.OpCall, Name: g.name("r"),
				Callee: "helper", Args: []ir.Value{g.pick(), g.pick()}})
			g.pool = append(g.pool, v)
		} else {
			v := g.emit(&ir.Inst{Op: ir.OpAdd, Name: g.name("v"),
				Args: []ir.Value{g.pick(), g.pick()}})
			g.pool = append(g.pool, v)
		}
	}
}

// scratchIndex emits code computing a value masked into the scratch range.
func (g *gen) scratchIndex() ir.Value {
	mask := int64(1)
	for mask*2 <= int64(g.opts.ScratchSlots) {
		mask *= 2
	}
	return g.emit(&ir.Inst{Op: ir.OpAnd, Name: g.name("ix"),
		Args: []ir.Value{g.pick(), ir.Const(mask - 1)}})
}

// branch emits an if/else diamond. Values defined inside the arms are not
// added to the pool (no phi nodes; arms communicate through memory).
func (g *gen) branch(depth int) {
	cond := g.emit(&ir.Inst{Op: ir.OpICmp, Name: g.name("bc"),
		Pred: ir.Pred(g.rng.Intn(6)), Args: []ir.Value{g.pick(), g.pick()}})
	savedPool := len(g.pool)

	thenB := &ir.Block{Name: g.name("then")}
	elseB := &ir.Block{Name: g.name("else")}
	joinB := &ir.Block{Name: g.name("join")}
	g.emit(&ir.Inst{Op: ir.OpCondBr, Args: []ir.Value{cond},
		Targets: []string{thenB.Name, elseB.Name}})

	g.fn.Blocks = append(g.fn.Blocks, thenB)
	g.block = thenB
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		g.stmt(depth + 1)
	}
	g.pool = g.pool[:savedPool]
	g.emit(&ir.Inst{Op: ir.OpBr, Targets: []string{joinB.Name}})

	g.fn.Blocks = append(g.fn.Blocks, elseB)
	g.block = elseB
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		g.stmt(depth + 1)
	}
	g.pool = g.pool[:savedPool]
	g.emit(&ir.Inst{Op: ir.OpBr, Targets: []string{joinB.Name}})

	g.fn.Blocks = append(g.fn.Blocks, joinB)
	g.block = joinB
	// Re-seed the pool from memory so the join block has fresh values.
	idx := g.scratchIndex()
	p := g.emit(&ir.Inst{Op: ir.OpGEP, Name: g.name("jp"), Args: []ir.Value{g.baseArg, idx}})
	v := g.emit(&ir.Inst{Op: ir.OpLoad, Name: g.name("jv"), Args: []ir.Value{p}})
	g.pool = append(g.pool, v)
}

// loop emits a bounded counting loop whose body is straight-line.
func (g *gen) loop() {
	trip := 1 + g.rng.Intn(g.opts.MaxLoopTrip)
	ctr := g.counterSlot()
	g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{ir.Const(0), ctr}})

	headB := &ir.Block{Name: g.name("head")}
	bodyB := &ir.Block{Name: g.name("body")}
	exitB := &ir.Block{Name: g.name("exit")}
	g.emit(&ir.Inst{Op: ir.OpBr, Targets: []string{headB.Name}})

	g.fn.Blocks = append(g.fn.Blocks, headB)
	g.block = headB
	iv := g.emit(&ir.Inst{Op: ir.OpLoad, Name: g.name("iv"), Args: []ir.Value{ctr}})
	cond := g.emit(&ir.Inst{Op: ir.OpICmp, Name: g.name("lc"), Pred: ir.PredSLT,
		Args: []ir.Value{iv, ir.Const(int64(trip))}})
	g.emit(&ir.Inst{Op: ir.OpCondBr, Args: []ir.Value{cond},
		Targets: []string{bodyB.Name, exitB.Name}})

	g.fn.Blocks = append(g.fn.Blocks, bodyB)
	g.block = bodyB
	savedPool := len(g.pool)
	g.pool = append(g.pool, iv)
	for i := 0; i < 1+g.rng.Intn(4); i++ {
		if k := g.rng.Intn(8); k == 0 {
			g.branch(1)
		} else {
			g.stmt(1)
		}
	}
	g.pool = g.pool[:savedPool]
	next := g.emit(&ir.Inst{Op: ir.OpAdd, Name: g.name("nx"),
		Args: []ir.Value{iv, ir.Const(1)}})
	g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{next, ctr}})
	g.emit(&ir.Inst{Op: ir.OpBr, Targets: []string{headB.Name}})

	g.fn.Blocks = append(g.fn.Blocks, exitB)
	g.block = exitB
}

func (g *gen) counterSlot() ir.Value {
	// Allocas must live in the entry block (clang -O0 discipline); the
	// entry block is Blocks[0] and still mutable.
	a := &ir.Inst{Op: ir.OpAlloca, Name: g.name("slot"), NSlots: 1}
	entry := g.fn.Blocks[0]
	entry.Insts = append([]*ir.Inst{a}, entry.Insts...)
	return a
}

func (g *gen) buildHelper() {
	pa := &ir.Param{Name: "x", Index: 0}
	pb := &ir.Param{Name: "y", Index: 1}
	f := &ir.Func{Name: "helper", Params: []*ir.Param{pa, pb}}
	g.mod.Funcs = append(g.mod.Funcs, f)
	g.fn = f
	g.block = &ir.Block{Name: "entry"}
	f.Blocks = []*ir.Block{g.block}
	t := g.emit(&ir.Inst{Op: ir.OpMul, Name: "t", Args: []ir.Value{pa, pb}})
	u := g.emit(&ir.Inst{Op: ir.OpXor, Name: "u", Args: []ir.Value{t, pa}})
	s := g.emit(&ir.Inst{Op: ir.OpAShr, Name: "s", Args: []ir.Value{u, ir.Const(3)}})
	r := g.emit(&ir.Inst{Op: ir.OpAdd, Name: "r", Args: []ir.Value{s, pb}})
	g.emit(&ir.Inst{Op: ir.OpRet, Args: []ir.Value{r}})
}

func (g *gen) buildMain() {
	base := &ir.Param{Name: "base", Index: 0}
	pa := &ir.Param{Name: "a", Index: 1}
	pb := &ir.Param{Name: "b", Index: 2}
	f := &ir.Func{Name: "main", Params: []*ir.Param{base, pa, pb}}
	g.mod.Funcs = append(g.mod.Funcs, f)
	g.fn = f
	g.baseArg = base
	g.block = &ir.Block{Name: "entry"}
	f.Blocks = []*ir.Block{g.block}
	g.pool = []ir.Value{pa, pb}

	// At the default density of 2 this draws loop on 0 and branch on 1 —
	// the historical mix, consuming the identical RNG sequence — and denser
	// settings widen the control-flow band without changing the draw shape.
	for i := 0; i < g.opts.Stmts; i++ {
		if k := g.rng.Intn(10); k < g.opts.BranchDensity {
			if k%2 == 0 {
				g.loop()
			} else {
				g.branch(0)
			}
		} else {
			g.stmt(0)
		}
	}

	// Outputs: a handful of live values plus a scratch checksum.
	for i := 0; i < 3 && i < len(g.pool); i++ {
		g.emit(&ir.Inst{Op: ir.OpOut, Args: []ir.Value{g.pool[g.rng.Intn(len(g.pool))]}})
	}
	acc := g.counterSlot()
	g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{ir.Const(0), acc}})
	for i := 0; i < g.opts.ScratchSlots; i++ {
		p := g.emit(&ir.Inst{Op: ir.OpGEP, Name: g.name("op"),
			Args: []ir.Value{base, ir.Const(int64(i))}})
		v := g.emit(&ir.Inst{Op: ir.OpLoad, Name: g.name("ov"), Args: []ir.Value{p}})
		old := g.emit(&ir.Inst{Op: ir.OpLoad, Name: g.name("oa"), Args: []ir.Value{acc}})
		m := g.emit(&ir.Inst{Op: ir.OpMul, Name: g.name("om"),
			Args: []ir.Value{old, ir.Const(31)}})
		s := g.emit(&ir.Inst{Op: ir.OpAdd, Name: g.name("os"), Args: []ir.Value{m, v}})
		g.emit(&ir.Inst{Op: ir.OpStore, Args: []ir.Value{s, acc}})
	}
	final := g.emit(&ir.Inst{Op: ir.OpLoad, Name: g.name("fin"), Args: []ir.Value{acc}})
	g.emit(&ir.Inst{Op: ir.OpOut, Args: []ir.Value{final}})
	g.emit(&ir.Inst{Op: ir.OpRet, Args: []ir.Value{final}})
}
