// Command fiserve is the sharded campaign service: a coordinator that
// partitions deterministic fault-injection campaigns into journal shards and
// leases them to worker processes, plus the worker and the submitting client.
// Any worker count — including workers that die mid-shard and are replaced —
// produces a result table and a merged canonical journal byte-identical to a
// single-process run (see internal/fiserve).
//
// Usage:
//
//	fiserve serve  -addr 127.0.0.1:8090 -dir /tmp/fiserve -shards 4
//	fiserve worker -join http://127.0.0.1:8090 -name w1
//	fiserve run    -join http://127.0.0.1:8090 -bench bfs -technique ferrum -samples 1000
//
// The coordinator also serves the standard observability surface (/metrics,
// /progress, /debug/pprof); its /metrics reconciles exactly against the
// merged journal with `fistat -journal merged.ndjson -reconcile metrics.txt`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ferrum/internal/fiserve"
	"ferrum/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fiserve:", err)
		os.Exit(1)
	}
}

func run(argv []string, out io.Writer) error {
	if len(argv) == 0 {
		return fmt.Errorf("usage: fiserve serve|worker|run [flags] (-h for per-command flags)")
	}
	switch argv[0] {
	case "serve":
		return runServe(argv[1:], out)
	case "worker":
		return runWorker(argv[1:], out)
	case "run":
		return runSubmit(argv[1:], out)
	default:
		return fmt.Errorf("unknown command %q: want serve, worker or run", argv[0])
	}
}

// stopOnSignal closes the returned channel on SIGINT/SIGTERM.
func stopOnSignal() <-chan struct{} {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	return stop
}

func runServe(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("fiserve serve", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:0", "listen address (host:port; :0 picks a free port)")
		dir     = fs.String("dir", "", "directory for shard and merged journals (required)")
		shards  = fs.Int("shards", 2, "journal shards per campaign (clamped to its sample count)")
		timeout = fs.Duration("lease-timeout", 30*time.Second, "watchdog: a lease silent this long is revoked and re-leased")
		queue   = fs.Int("queue", 16, "max unfinished campaigns across all tenants (submissions past it get 429)")
		quota   = fs.Int("tenant-quota", 0, "max unfinished campaigns per tenant (0 = same as -queue)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("serve needs -dir for the durable shard journals")
	}
	co, err := fiserve.Start(fiserve.Config{
		Addr: *addr, Dir: *dir, Shards: *shards, LeaseTimeout: *timeout,
		QueueMax: *queue, TenantQuota: *quota,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fiserve: coordinator on http://%s (journals in %s, %d shards/campaign)\n",
		co.Addr(), *dir, *shards)
	<-stopOnSignal()
	return co.Close()
}

func runWorker(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("fiserve worker", flag.ContinueOnError)
	var (
		join    = fs.String("join", "", "coordinator base URL, e.g. http://127.0.0.1:8090 (required)")
		name    = fs.String("name", "", "worker name in leases and logs (default host:pid)")
		workers = fs.Int("workers", 0, "intra-shard campaign parallelism (0 = GOMAXPROCS)")
		poll    = fs.Duration("poll", 100*time.Millisecond, "idle lease-poll interval")
		drain   = fs.Bool("exit-on-drain", false, "exit once the coordinator has no unfinished campaigns")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *join == "" {
		return fmt.Errorf("worker needs -join with the coordinator URL")
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := &fiserve.Worker{
		Base: *join, Name: *name, Workers: *workers, Poll: *poll, ExitOnDrain: *drain,
	}
	fmt.Fprintf(out, "fiserve: worker %s polling %s\n", *name, *join)
	return w.Run(stopOnSignal())
}

func runSubmit(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("fiserve run", flag.ContinueOnError)
	var (
		join      = fs.String("join", "", "coordinator base URL (required)")
		tenant    = fs.String("tenant", "", "tenant name for admission quotas")
		bench     = fs.String("bench", "bfs", "benchmark name")
		technique = fs.String("technique", "ferrum", "raw, ir-level-eddi, hybrid-assembly-level-eddi, ferrum")
		level     = fs.String("level", "asm", "injection level: asm or ir")
		samples   = fs.Int("samples", 1000, "fault injections")
		seed      = fs.Int64("seed", harness.DefaultSeed, "RNG seed")
		scale     = fs.Int("scale", 1, "benchmark scale factor")
		bits      = fs.Int("bits", 1, "bits flipped per fault")
		optimize  = fs.Bool("optimize", false, "run the optimizing scheduler on the protected assembly")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *join == "" {
		return fmt.Errorf("run needs -join with the coordinator URL")
	}
	cl := &fiserve.Client{Base: *join, Tenant: *tenant}
	spec := harness.CampaignSpec{
		Bench: *bench, Technique: harness.Technique(*technique), Level: *level,
		Samples: *samples, Seed: *seed, Scale: *scale, Bits: *bits, Optimize: *optimize,
	}
	id, err := cl.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fiserve: campaign %s submitted, waiting\n", id)
	st, err := cl.Wait(id)
	if err != nil {
		return err
	}
	fmt.Fprint(out, st.Table)
	fmt.Fprintf(os.Stderr, "fiserve: merged journal: %s\n", st.MergedJournal)
	return nil
}
