// Command fidi runs a single-bit fault-injection campaign (the paper's
// §IV-A2 methodology) against a benchmark or an IR program under a chosen
// protection technique and prints the outcome distribution.
//
// Usage:
//
//	fidi -bench pathfinder -technique ferrum -samples 1000
//	fidi -in prog.ll -args 100 -technique raw
//	fidi -bench knn -technique ir-level-eddi -level ir
//	fidi -bench bfs -technique raw -trace 8     # flight-record one fault
//	fidi -bench bfs -progress -events-out run.ndjson -trace-out t.json
//
// fidi shares reprod's observability layer (internal/obs): -progress
// streams throttled injection progress to stderr, -events-out writes the
// NDJSON span/metrics stream, -trace-out writes a Perfetto-loadable Chrome
// trace, and -cpuprofile/-memprofile capture stdlib pprof profiles.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/harness"
	"ferrum/internal/ir"
	"ferrum/internal/irpass"
	"ferrum/internal/machine"
	"ferrum/internal/obs"
	"ferrum/internal/rodinia"
)

// errw carries progress and the checkpoint summary; tests swap it for a
// buffer.
var errw io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fidi:", err)
		os.Exit(1)
	}
}

func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("fidi", flag.ContinueOnError)
	var (
		benchName = fs.String("bench", "", "benchmark name (see -list)")
		inPath    = fs.String("in", "", "IR program file (alternative to -bench)")
		argsStr   = fs.String("args", "", "comma-separated entry arguments for -in programs")
		technique = fs.String("technique", "ferrum", "raw, ir-level-eddi, hybrid-assembly-level-eddi, ferrum")
		level     = fs.String("level", "asm", "injection level: asm or ir (ir implies ir-level techniques)")
		samples   = fs.Int("samples", 1000, "fault injections")
		seed      = fs.Int64("seed", harness.DefaultSeed, "RNG seed (any value, including 0, is honoured)")
		scale     = fs.Int("scale", 1, "benchmark scale factor")
		bits      = fs.Int("bits", 1, "bits flipped per fault (multi-bit upsets)")
		list      = fs.Bool("list", false, "list benchmarks and exit")
		trace     = fs.Int("trace", 0, "replay one sampled fault of each non-benign outcome and print the last N executed instructions")
		journalP  = fs.String("journal", "", "write a crash-safe campaign journal (NDJSON) to this file; resume with -resume")
		resume    = fs.Bool("resume", false, "resume from the -journal file of an interrupted campaign instead of starting fresh")
		ciWidth   = fs.Float64("ci-width", 0, "stop the campaign early once the 95% CI of the SDC rate is no wider than this (0 = off)")
		pruneStr  = fs.String("prune", "off", "static fault-site pruning (asm level only): off, dead (exact), exact (dead+masked), full (adds class dedup, statistical)")
		compStr   = fs.String("compose", "off", "compositional campaigns (asm level only): off, on (sectioned at checkpoint boundaries), validate (also run the monolithic campaign and gate the composed rates against it)")
		noCkpt    = fs.Bool("no-checkpoint", false, "disable checkpointed fast-forwarding (identical results, slower)")
		ckptEvery = fs.Uint64("checkpoint-every", 0, "snapshot spacing K in dynamic sites (0 = auto-tune)")
		progress  = fs.Bool("progress", false, "stream throttled injection progress to stderr")
		dumpFus   = fs.Int("dump-fusion", 0, "print the top N fused superinstruction patterns by dynamic executions to stderr")
		serveAddr = fs.String("serve", "", "serve live observability over HTTP on this address (host:port; :0 picks a port): /metrics, /progress, /debug/pprof")
		serveDr   = fs.Duration("serve-drain", 0, "with -serve: after the campaign completes, keep serving until one more /metrics scrape lands or this much time passes (0 = exit immediately)")
		eventsOut = fs.String("events-out", "", "write NDJSON observability events (spans + final metrics) to this file")
		traceOut  = fs.String("trace-out", "", "write a Chrome trace_event JSON (Perfetto-loadable timeline) to this file")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile to this file")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *list {
		for _, b := range rodinia.All() {
			fmt.Fprintf(out, "%-16s %s\n", b.Name, b.Domain)
		}
		return nil
	}

	var (
		mod  *ir.Module
		args []uint64
		load func(fi.MemWriter) error
	)
	switch {
	case *benchName != "":
		b, ok := rodinia.ByName(*benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (try -list)", *benchName)
		}
		inst, err := b.Instantiate(*scale, *seed)
		if err != nil {
			return err
		}
		mod, args = inst.Mod, inst.Args
		load = func(w fi.MemWriter) error { return inst.Setup(w) }
	case *inPath != "":
		src, err := os.ReadFile(*inPath)
		if err != nil {
			return err
		}
		mod, err = ir.Parse(string(src))
		if err != nil {
			return err
		}
		for _, tok := range strings.Split(*argsStr, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.ParseInt(tok, 0, 64)
			if err != nil {
				return fmt.Errorf("bad argument %q: %v", tok, err)
			}
			args = append(args, uint64(v))
		}
		load = func(fi.MemWriter) error { return nil }
	default:
		return fmt.Errorf("one of -bench or -in is required")
	}

	// One observer for the whole invocation: the single campaign runs on
	// the main goroutine, so every span lands on lane 0.
	ob := obs.New()

	// -serve: live observatory, same endpoints as reprod. /metrics snapshots
	// the registry on demand; /progress streams the NDJSON events through a
	// broadcast hub.
	var hub *obs.Hub
	var server *obs.Server
	if *serveAddr != "" {
		hub = obs.NewHub()
		srv, serr := obs.StartServer(*serveAddr, ob.Reg.Snapshot, hub)
		if serr != nil {
			return serr
		}
		server = srv
		defer server.Close()
		fmt.Fprintf(errw, "serving http://%s (/metrics, /progress, /debug/pprof)\n", server.Addr())
	}
	var events *obs.NDJSON
	var sink io.Writer
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
		if hub != nil {
			sink = io.MultiWriter(f, hub)
		}
	} else if hub != nil {
		sink = hub
	}
	if sink != nil {
		events = obs.NewNDJSON(sink, time.Time{})
		events.Attach(ob.Trace)
		events.Meta("fidi", argv)
	}
	cellName := *benchName
	if cellName == "" {
		cellName = *inPath
	}
	cx := ob.Cell(cellName+"/"+*technique, 0)

	prune, perr := fi.ParsePruneMode(*pruneStr)
	if perr != nil {
		return perr
	}
	if prune != fi.PruneOff {
		if *level == "ir" {
			return fmt.Errorf("-prune requires -level asm (the analysis is assembly-level)")
		}
		if *ciWidth > 0 {
			return fmt.Errorf("-prune is incompatible with -ci-width (pruned campaigns have no uniform plan prefix)")
		}
	}

	composeMode, cerr := fi.ParseComposeMode(*compStr)
	if cerr != nil {
		return cerr
	}
	if composeMode != fi.ComposeOff {
		if *level == "ir" {
			return fmt.Errorf("-compose requires -level asm (sections are cut at assembly checkpoint boundaries)")
		}
		if prune != fi.PruneOff {
			return fmt.Errorf("-compose is incompatible with -prune (pruned campaigns have no per-section plan strata)")
		}
		if *ciWidth > 0 {
			return fmt.Errorf("-compose is incompatible with -ci-width (per-section budgets are fixed up front)")
		}
		if *noCkpt {
			return fmt.Errorf("-compose requires checkpointing (sections are cut at checkpoint boundaries); drop -no-checkpoint")
		}
	}

	campaign := fi.Campaign{
		Samples: *samples, Seed: *seed, BitsPerFault: *bits,
		NoCheckpoint: *noCkpt, CheckpointEvery: *ckptEvery,
		CIWidth: *ciWidth, Prune: prune, Compose: composeMode,
		Obs: cx,
	}
	if *resume && *journalP == "" {
		return fmt.Errorf("-resume requires -journal")
	}
	if *journalP != "" {
		key := cellName + "/" + *technique + "/" + *level
		meta := fi.JournalMeta{
			Tool: "fidi", Seed: *seed, Samples: *samples, Scale: *scale,
			Benchmarks: []string{cellName}, Technique: *technique,
			Level: *level, Bits: *bits, CIWidth: *ciWidth,
		}
		if prune != fi.PruneOff {
			meta.Prune = prune.String()
		}
		if composeMode != fi.ComposeOff {
			meta.Compose = composeMode.String()
		}
		var journal *fi.Journal
		if *resume {
			st, j, jerr := fi.ResumeJournal(*journalP)
			if jerr != nil {
				return jerr
			}
			if err := st.Meta.Check(meta); err != nil {
				j.Close()
				return err
			}
			if st.TornDropped {
				fmt.Fprintln(errw, "journal: dropped a torn trailing record; its plan will re-run")
			}
			campaign.Prior = st.Cell(key)
			journal = j
		} else {
			j, jerr := fi.CreateJournal(*journalP, meta)
			if jerr != nil {
				return jerr
			}
			journal = j
		}
		journal.Observe(ob)
		campaign.Journal = journal
		campaign.Key = key
		defer journal.Close()
	}
	if *progress && *samples > 0 {
		// Throttle to ~10% steps: the hook fires from concurrent campaign
		// workers, so the high-water mark is advanced with a CAS.
		step := *samples / 10
		if step < 1 {
			step = 1
		}
		var next atomic.Int64
		next.Store(int64(step))
		campaign.Progress = func(done int) {
			for {
				n := next.Load()
				if int64(done) < n {
					return
				}
				if next.CompareAndSwap(n, n+int64(step)) {
					fmt.Fprintf(errw, "injected %d/%d\n", done, *samples)
					return
				}
			}
		}
	}
	var res fi.Result
	var err error

	if *level == "ir" {
		target := mod
		if harness.Technique(*technique) == harness.IREDDI {
			target, err = irpass.EDDI(mod)
			if err != nil {
				return err
			}
		} else if *technique != string(harness.Raw) {
			return fmt.Errorf("IR-level injection supports raw and ir-level-eddi")
		}
		res, err = fi.RunIRCampaign(fi.IRTarget{
			Mod: target, MemSize: 1 << 20, Args: args, Setup: load,
		}, campaign)
	} else {
		bsp := cx.Span("build")
		bsp.SetAttr("tech", *technique)
		build, berr := harness.BuildTechnique(mod, harness.Technique(*technique))
		bsp.End()
		if berr != nil {
			return berr
		}
		res, err = fi.RunAsmCampaign(fi.AsmTarget{
			Prog: build.Prog, MemSize: 1 << 20, Args: args, Setup: load,
		}, campaign)
	}
	if err != nil {
		return err
	}
	// The campaign counters are frozen from here on. Scrapes answered before
	// this point may predate them; the drain window at the end waits for one
	// that doesn't — a watcher that reacts to the output below always gets
	// the final counters.
	scrapesBeforeReport := server.Scrapes()

	harness.RenderCampaign(out, *technique, *level, res)
	lo, hi := res.CI95()
	if res.EarlyStopped {
		fmt.Fprintf(errw, "early stop: SDC-rate CI width reached %.4f after %d samples\n",
			hi-lo, res.Samples)
	}
	if cp := res.Checkpoint; cp.Enabled {
		fmt.Fprintf(errw,
			"checkpointing: K=%d, %d snapshots (%d KiB), %d restores, %d cold starts, %d insts skipped\n",
			cp.Interval, cp.Snapshots, cp.SnapshotBytes>>10,
			cp.Restores, cp.ColdStarts, cp.SkippedInsts)
	}
	if pr := res.Pruned; pr.Enabled {
		fmt.Fprintf(errw,
			"pruning (%s): %d of %d plans answered statically (%d dead, %d masked, %d deduped), %d executed across %d classes\n",
			pr.Mode, pr.Planned-pr.Executed, pr.Planned,
			pr.Dead, pr.Masked, pr.Deduped, pr.Executed, pr.Classes)
	}
	if cs := res.Composed; cs.Enabled {
		fmt.Fprintf(errw,
			"compose (%s): %d sections at K=%d; %d of %d plans classified at their section boundary, %d fell back to end-to-end\n",
			cs.Mode, len(cs.Rows), cs.Interval, cs.Sections, cs.Composed, cs.Fallbacks)
		if v := cs.Validation; v != nil {
			verdict := "within"
			if !v.OK {
				verdict = "OUTSIDE"
			}
			fmt.Fprintf(errw,
				"compose validate: SDC %.4f vs monolithic %.4f (tol %.4f), detected %.4f vs %.4f (tol %.4f) — %s tolerance\n",
				v.SDC, v.MonoSDC, v.SDCTol, v.Detected, v.MonoDetected, v.DetectedTol, verdict)
			if !v.OK {
				return fmt.Errorf("compose validation failed: composed rates fall outside the monolithic Wilson tolerance")
			}
		}
	}

	if *trace > 0 && *level != "ir" {
		tsp := cx.Span("trace.replay")
		build, berr := harness.BuildTechnique(mod, harness.Technique(*technique))
		if berr != nil {
			return berr
		}
		tgt := fi.AsmTarget{Prog: build.Prog, MemSize: 1 << 20, Args: args, Setup: load}
		for _, want := range []fi.Outcome{fi.SDC, fi.Detected, fi.Crash} {
			if res.Count(want) == 0 {
				continue
			}
			f, ok, err := fi.FindExample(tgt, campaign, want)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			m, err := machine.New(build.Prog, 1<<20)
			if err != nil {
				return err
			}
			if err := load(m); err != nil {
				return err
			}
			r := m.Run(machine.RunOpts{Args: args, Fault: &f, Trace: *trace})
			fmt.Fprintf(out, "\nexample %s fault (site %d, bit %d) — last %d instructions:\n",
				want, f.Site, f.Bit, len(r.Trace))
			for _, line := range r.Trace {
				fmt.Fprintln(out, "  "+line)
			}
		}
		tsp.End()
	}

	// One snapshot feeds the fusion report and the NDJSON metrics record;
	// the Perfetto export shares the tracer's span list and epoch.
	snap := ob.Reg.Snapshot()
	if *dumpFus > 0 {
		obs.RenderFusion(errw, snap, *dumpFus)
	}
	if events != nil {
		events.Metrics(snap)
		if err := events.Err(); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := obs.WriteTrace(f, ob.Trace.Spans(), ob.Trace.Epoch()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	// Drain window: hold the endpoint open until a post-report scrape reads
	// the frozen counters — CI reconciles against it.
	if server != nil && *serveDr > 0 {
		server.AwaitScrape(scrapesBeforeReport, *serveDr)
	}
	return nil
}
