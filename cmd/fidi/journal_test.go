package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// swapStderr redirects the package stderr writer to a buffer for one test.
func swapStderr(t *testing.T) *strings.Builder {
	t.Helper()
	old := errw
	var buf strings.Builder
	errw = &buf
	t.Cleanup(func() { errw = old })
	return &buf
}

// TestRunJournalResume: a single-campaign journal survives a simulated kill
// and -resume reproduces the uninterrupted output byte for byte.
func TestRunJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.ndjson")
	args := []string{"-bench", "bfs", "-technique", "ferrum", "-samples", "80"}
	swapStderr(t)

	var want strings.Builder
	if err := run(args, &want); err != nil {
		t.Fatal(err)
	}
	var out1 strings.Builder
	if err := run(append(args, "-journal", path), &out1); err != nil {
		t.Fatal(err)
	}
	if out1.String() != want.String() {
		t.Error("journaled campaign's stdout differs from the baseline")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	var out2 strings.Builder
	if err := run(append(args, "-journal", path, "-resume"), &out2); err != nil {
		t.Fatal(err)
	}
	if out2.String() != want.String() {
		t.Errorf("resumed stdout is not byte-identical:\n%s\n---\n%s", out2.String(), want.String())
	}

	// Second resume: the cell record answers the campaign outright.
	var out3 strings.Builder
	if err := run(append(args, "-journal", path, "-resume"), &out3); err != nil {
		t.Fatal(err)
	}
	if out3.String() != want.String() {
		t.Error("fully journaled resume's stdout is not byte-identical")
	}
}

// TestRunJournalGuards: -resume needs -journal; a journal recorded under a
// different technique is refused (its plans answer different campaigns).
func TestRunJournalGuards(t *testing.T) {
	swapStderr(t)
	var out strings.Builder
	if err := run([]string{"-bench", "bfs", "-resume"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-resume requires -journal") {
		t.Errorf("-resume without -journal: err = %v", err)
	}

	path := filepath.Join(t.TempDir(), "campaign.ndjson")
	if err := run([]string{"-bench", "bfs", "-technique", "raw", "-samples", "60", "-journal", path}, &out); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-bench", "bfs", "-technique", "ferrum", "-samples", "60", "-journal", path, "-resume"}, &out)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("mismatched -technique resume: err = %v", err)
	}
}

// TestRunEarlyStopFlag: -ci-width truncates the campaign and reports the
// effective sample count on stdout and the stop notice on stderr.
func TestRunEarlyStopFlag(t *testing.T) {
	stderr := swapStderr(t)
	var out strings.Builder
	if err := run([]string{"-bench", "bfs", "-technique", "raw", "-samples", "256", "-ci-width", "0.25"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "samples: 64") {
		t.Errorf("stdout missing truncated sample count:\n%s", out.String())
	}
	if !strings.Contains(stderr.String(), "early stop") {
		t.Errorf("stderr missing early-stop notice:\n%s", stderr.String())
	}
}
