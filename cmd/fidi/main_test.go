package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bfs", "particlefilter", "kmeans"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list missing %s", name)
		}
	}
}

func TestRunBenchmarkCampaign(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "bfs", "-technique", "ferrum", "-samples", "80"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "SDC rate: 0.000") {
		t.Errorf("ferrum should show zero SDC rate:\n%s", s)
	}
	if !strings.Contains(s, "detected") {
		t.Errorf("output missing outcome table:\n%s", s)
	}
}

func TestRunRawWithTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "bfs", "-technique", "raw", "-samples", "120", "-trace", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "example") || !strings.Contains(out.String(), "last 4 instructions") {
		t.Errorf("trace output missing:\n%s", out.String())
	}
}

// TestRunNoCheckpointIdentical pins the -no-checkpoint escape hatch:
// stdout must be byte-identical with checkpointing on and off.
func TestRunNoCheckpointIdentical(t *testing.T) {
	var ck, direct strings.Builder
	args := []string{"-bench", "bfs", "-technique", "raw", "-samples", "80"}
	if err := run(args, &ck); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-no-checkpoint"), &direct); err != nil {
		t.Fatal(err)
	}
	if ck.String() != direct.String() {
		t.Errorf("outputs differ:\n%s\n---\n%s", ck.String(), direct.String())
	}
}

func TestRunIRLevel(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "knn", "-technique", "ir-level-eddi", "-level", "ir", "-samples", "60"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "level: ir") {
		t.Errorf("output:\n%s", out.String())
	}
	// Assembly-only techniques are rejected at IR level.
	if err := run([]string{"-bench", "knn", "-technique", "ferrum", "-level", "ir"}, &out); err == nil {
		t.Error("ferrum accepted at IR level")
	}
}

func TestRunFileInput(t *testing.T) {
	p := filepath.Join(t.TempDir(), "prog.ll")
	src := `
func @main(%n) {
entry:
  %d = mul %n, 3
  out %d
  ret %d
}
`
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", p, "-args", "7", "-technique", "raw", "-samples", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "samples: 50") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunMultiBit(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "lud", "-technique", "ferrum", "-samples", "60", "-bits", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SDC rate: 0.000") {
		t.Errorf("multi-bit ferrum run:\n%s", out.String())
	}
}

// TestRunProgressAndSinks: -progress streams throttled counts to stderr,
// -events-out yields a parseable NDJSON stream whose final metrics record
// reconciles with the printed outcome table, and -trace-out is valid JSON.
func TestRunProgressAndSinks(t *testing.T) {
	old := errw
	var stderr strings.Builder
	errw = &stderr
	t.Cleanup(func() { errw = old })

	dir := t.TempDir()
	events := filepath.Join(dir, "e.ndjson")
	trace := filepath.Join(dir, "t.json")
	var out strings.Builder
	err := run([]string{"-bench", "bfs", "-technique", "raw", "-samples", "80",
		"-progress", "-events-out", events, "-trace-out", trace}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "injected ") ||
		!strings.Contains(stderr.String(), "/80") {
		t.Errorf("stderr missing throttled progress:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "checkpointing: K=") {
		t.Errorf("stderr missing checkpoint summary:\n%s", stderr.String())
	}
	if strings.Contains(out.String(), "injected ") {
		t.Error("progress leaked into stdout")
	}

	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	var sawMeta, sawInject, sawMetrics bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch rec["type"] {
		case "meta":
			sawMeta = true
		case "span":
			if rec["name"] == "inject" {
				sawInject = true
			}
		case "metrics":
			sawMetrics = true
			counters := rec["counters"].(map[string]any)
			if counters["fi.plans"].(float64) != 80 {
				t.Errorf("metrics fi.plans = %v, want 80", counters["fi.plans"])
			}
		}
	}
	if !sawMeta || !sawInject || !sawMetrics {
		t.Errorf("NDJSON stream missing records: meta=%v inject=%v metrics=%v",
			sawMeta, sawInject, sawMetrics)
	}

	tdata, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tdata, &tf); err != nil {
		t.Fatalf("trace-out is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Error("trace-out has no events")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -bench/-in accepted")
	}
	if err := run([]string{"-bench", "nope"}, &out); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	p := filepath.Join(t.TempDir(), "prog.ll")
	if err := os.WriteFile(p, []byte("func @main() {\nentry:\n  ret\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", p, "-args", "zzz"}, &out); err == nil {
		t.Error("bad args accepted")
	}
}
