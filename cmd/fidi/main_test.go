package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/obs"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bfs", "particlefilter", "kmeans"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list missing %s", name)
		}
	}
}

func TestRunBenchmarkCampaign(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "bfs", "-technique", "ferrum", "-samples", "80"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "SDC rate: 0.000") {
		t.Errorf("ferrum should show zero SDC rate:\n%s", s)
	}
	if !strings.Contains(s, "detected") {
		t.Errorf("output missing outcome table:\n%s", s)
	}
}

func TestRunRawWithTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "bfs", "-technique", "raw", "-samples", "120", "-trace", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "example") || !strings.Contains(out.String(), "last 4 instructions") {
		t.Errorf("trace output missing:\n%s", out.String())
	}
}

// TestRunNoCheckpointIdentical pins the -no-checkpoint escape hatch:
// stdout must be byte-identical with checkpointing on and off.
func TestRunNoCheckpointIdentical(t *testing.T) {
	var ck, direct strings.Builder
	args := []string{"-bench", "bfs", "-technique", "raw", "-samples", "80"}
	if err := run(args, &ck); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-no-checkpoint"), &direct); err != nil {
		t.Fatal(err)
	}
	if ck.String() != direct.String() {
		t.Errorf("outputs differ:\n%s\n---\n%s", ck.String(), direct.String())
	}
}

func TestRunIRLevel(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "knn", "-technique", "ir-level-eddi", "-level", "ir", "-samples", "60"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "level: ir") {
		t.Errorf("output:\n%s", out.String())
	}
	// Assembly-only techniques are rejected at IR level.
	if err := run([]string{"-bench", "knn", "-technique", "ferrum", "-level", "ir"}, &out); err == nil {
		t.Error("ferrum accepted at IR level")
	}
}

func TestRunFileInput(t *testing.T) {
	p := filepath.Join(t.TempDir(), "prog.ll")
	src := `
func @main(%n) {
entry:
  %d = mul %n, 3
  out %d
  ret %d
}
`
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", p, "-args", "7", "-technique", "raw", "-samples", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "samples: 50") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunMultiBit(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "lud", "-technique", "ferrum", "-samples", "60", "-bits", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SDC rate: 0.000") {
		t.Errorf("multi-bit ferrum run:\n%s", out.String())
	}
}

// TestRunProgressAndSinks: -progress streams throttled counts to stderr,
// -events-out yields a parseable NDJSON stream whose final metrics record
// reconciles with the printed outcome table, and -trace-out is valid JSON.
func TestRunProgressAndSinks(t *testing.T) {
	old := errw
	var stderr strings.Builder
	errw = &stderr
	t.Cleanup(func() { errw = old })

	dir := t.TempDir()
	events := filepath.Join(dir, "e.ndjson")
	trace := filepath.Join(dir, "t.json")
	var out strings.Builder
	err := run([]string{"-bench", "bfs", "-technique", "raw", "-samples", "80",
		"-progress", "-events-out", events, "-trace-out", trace}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "injected ") ||
		!strings.Contains(stderr.String(), "/80") {
		t.Errorf("stderr missing throttled progress:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "checkpointing: K=") {
		t.Errorf("stderr missing checkpoint summary:\n%s", stderr.String())
	}
	if strings.Contains(out.String(), "injected ") {
		t.Error("progress leaked into stdout")
	}

	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	var sawMeta, sawInject, sawMetrics bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch rec["type"] {
		case "meta":
			sawMeta = true
		case "span":
			if rec["name"] == "inject" {
				sawInject = true
			}
		case "metrics":
			sawMetrics = true
			counters := rec["counters"].(map[string]any)
			if counters["fi.plans"].(float64) != 80 {
				t.Errorf("metrics fi.plans = %v, want 80", counters["fi.plans"])
			}
		}
	}
	if !sawMeta || !sawInject || !sawMetrics {
		t.Errorf("NDJSON stream missing records: meta=%v inject=%v metrics=%v",
			sawMeta, sawInject, sawMetrics)
	}

	tdata, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tdata, &tf); err != nil {
		t.Fatalf("trace-out is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Error("trace-out has no events")
	}
}

// syncBuf is a concurrency-safe stderr stand-in: TestRunServeScrape reads
// it while run() is still writing.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunServeScrape: the -serve endpoint answers a live /metrics scrape
// whose counters and detection-latency histograms reconcile exactly with
// the campaign the process just ran, and -serve-drain holds the process
// until that post-completion scrape lands.
func TestRunServeScrape(t *testing.T) {
	old := errw
	stderr := &syncBuf{}
	errw = stderr
	t.Cleanup(func() { errw = old })

	journal := filepath.Join(t.TempDir(), "j.ndjson")
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{"-bench", "bfs", "-technique", "ferrum", "-samples", "100",
			"-journal", journal, "-serve", "127.0.0.1:0", "-serve-drain", "30s"}, &out)
	}()

	// The listen address is announced on stderr ("serving http://ADDR (...").
	var addr string
	for i := 0; i < 500 && addr == ""; i++ {
		if m := regexp.MustCompile(`serving http://(\S+) `).FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("serve address never announced:\n%s", stderr.String())
	}

	// Poll /metrics until the campaign's counters land (they publish once,
	// at campaign end); early scrapes must not end the drain window.
	var snap obs.Snapshot
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		snap, err = obs.ParsePrometheus(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		// Keep scraping until the process exits: the drain window only ends
		// on a scrape that arrives after the run froze its counters.
		if snap.Counters["fi_plans"] == 100 {
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(100 * time.Millisecond):
				continue
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fi_plans never reached 100: %v", snap.Counters)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if snap.Counters["fi_campaigns"] != 1 {
		t.Errorf("fi_campaigns = %d, want 1", snap.Counters["fi_campaigns"])
	}
	// Latency histograms from the scrape must reconcile with the journal's
	// frozen cell record, bucket for bucket.
	st, err := fi.LoadJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	res := st.Cell("bfs/ferrum/asm").Result
	if res == nil {
		t.Fatal("journal has no complete cell record")
	}
	var totalLat int64
	for _, o := range []fi.Outcome{fi.Benign, fi.SDC, fi.Detected, fi.Crash, fi.Hang} {
		jh := res.Latency.Hist(o)
		sh := snap.Hists["fi_detect_latency_cycles_"+o.String()]
		if sh.Count != jh.N {
			t.Errorf("latency %s: scrape %d samples, journal %d", o, sh.Count, jh.N)
		}
		for b, c := range jh.Counts {
			if b < len(sh.Counts) && sh.Counts[b] != c {
				t.Errorf("latency %s bucket %d: scrape %d, journal %d", o, b, sh.Counts[b], c)
			}
		}
		if int64(res.Counts[o]) != 0 && o != fi.Benign && jh.N == 0 {
			t.Errorf("outcome %s has %d faults but no latency samples", o, res.Counts[o])
		}
		totalLat += jh.N
	}
	if totalLat == 0 {
		t.Error("no latency samples recorded at all")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -bench/-in accepted")
	}
	if err := run([]string{"-bench", "nope"}, &out); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	p := filepath.Join(t.TempDir(), "prog.ll")
	if err := os.WriteFile(p, []byte("func @main() {\nentry:\n  ret\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", p, "-args", "zzz"}, &out); err == nil {
		t.Error("bad args accepted")
	}
}
