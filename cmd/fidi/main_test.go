package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bfs", "particlefilter", "kmeans"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list missing %s", name)
		}
	}
}

func TestRunBenchmarkCampaign(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "bfs", "-technique", "ferrum", "-samples", "80"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "SDC rate: 0.000") {
		t.Errorf("ferrum should show zero SDC rate:\n%s", s)
	}
	if !strings.Contains(s, "detected") {
		t.Errorf("output missing outcome table:\n%s", s)
	}
}

func TestRunRawWithTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "bfs", "-technique", "raw", "-samples", "120", "-trace", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "example") || !strings.Contains(out.String(), "last 4 instructions") {
		t.Errorf("trace output missing:\n%s", out.String())
	}
}

// TestRunNoCheckpointIdentical pins the -no-checkpoint escape hatch:
// stdout must be byte-identical with checkpointing on and off.
func TestRunNoCheckpointIdentical(t *testing.T) {
	var ck, direct strings.Builder
	args := []string{"-bench", "bfs", "-technique", "raw", "-samples", "80"}
	if err := run(args, &ck); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-no-checkpoint"), &direct); err != nil {
		t.Fatal(err)
	}
	if ck.String() != direct.String() {
		t.Errorf("outputs differ:\n%s\n---\n%s", ck.String(), direct.String())
	}
}

func TestRunIRLevel(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "knn", "-technique", "ir-level-eddi", "-level", "ir", "-samples", "60"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "level: ir") {
		t.Errorf("output:\n%s", out.String())
	}
	// Assembly-only techniques are rejected at IR level.
	if err := run([]string{"-bench", "knn", "-technique", "ferrum", "-level", "ir"}, &out); err == nil {
		t.Error("ferrum accepted at IR level")
	}
}

func TestRunFileInput(t *testing.T) {
	p := filepath.Join(t.TempDir(), "prog.ll")
	src := `
func @main(%n) {
entry:
  %d = mul %n, 3
  out %d
  ret %d
}
`
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", p, "-args", "7", "-technique", "raw", "-samples", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "samples: 50") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunMultiBit(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "lud", "-technique", "ferrum", "-samples", "60", "-bits", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SDC rate: 0.000") {
		t.Errorf("multi-bit ferrum run:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -bench/-in accepted")
	}
	if err := run([]string{"-bench", "nope"}, &out); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-in", "/nonexistent"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	p := filepath.Join(t.TempDir(), "prog.ll")
	if err := os.WriteFile(p, []byte("func @main() {\nentry:\n  ret\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", p, "-args", "zzz"}, &out); err == nil {
		t.Error("bad args accepted")
	}
}
