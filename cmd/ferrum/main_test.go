package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testIR = `
func @main(%n) {
entry:
  %d = add %n, 1
  out %d
  ret %d
}
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunIRInputAllTechniques(t *testing.T) {
	in := writeTemp(t, "prog.ll", testIR)
	for _, tech := range []string{"ferrum", "hybrid", "ir-eddi", "none"} {
		var out, errOut strings.Builder
		if err := run([]string{"-in", in, "-technique", tech, "-stats"}, &out, &errOut); err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if !strings.Contains(out.String(), "main:") {
			t.Errorf("%s: no assembly emitted", tech)
		}
		if tech == "ferrum" {
			if !strings.Contains(out.String(), "vptest") {
				t.Errorf("ferrum output has no SIMD checks")
			}
			if !strings.Contains(errOut.String(), "simd-enabled") {
				t.Errorf("ferrum stats missing: %q", errOut.String())
			}
		}
	}
}

func TestRunAsmInput(t *testing.T) {
	asmSrc := `
	.globl	main
main:
	movslq	%ecx, %rcx
	hlt

	.globl	__rt
__rt:
exit_function:
	detect
`
	in := writeTemp(t, "prog.s", asmSrc)
	var out, errOut strings.Builder
	if err := run([]string{"-in", in, "-asm"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "xorq") {
		t.Errorf("no checks in protected assembly:\n%s", out.String())
	}
	// IR-level techniques reject assembly input.
	if err := run([]string{"-in", in, "-asm", "-technique", "ir-eddi"}, &out, &errOut); err == nil {
		t.Error("ir-eddi accepted assembly input")
	}
}

func TestRunOutputFile(t *testing.T) {
	in := writeTemp(t, "prog.ll", testIR)
	outPath := filepath.Join(t.TempDir(), "prot.s")
	var out, errOut strings.Builder
	if err := run([]string{"-in", in, "-o", outPath}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "exit_function") {
		t.Error("output file missing detection block")
	}
	if out.Len() != 0 {
		t.Error("stdout written despite -o")
	}
}

func TestRunVariantFlags(t *testing.T) {
	in := writeTemp(t, "prog.ll", testIR)
	var out, errOut strings.Builder
	if err := run([]string{"-in", in, "-zmm", "-batch", "8"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-nosimd"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-ratio", "0.5"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{}, &out, &errOut); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.ll"}, &out, &errOut); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeTemp(t, "bad.ll", "not ir at all")
	if err := run([]string{"-in", bad}, &out, &errOut); err == nil {
		t.Error("bad IR accepted")
	}
	good := writeTemp(t, "prog.ll", testIR)
	if err := run([]string{"-in", good, "-technique", "warp"}, &out, &errOut); err == nil {
		t.Error("unknown technique accepted")
	}
}
