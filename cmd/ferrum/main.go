// Command ferrum applies a protection technique to a program and prints
// the protected assembly, mirroring how the paper's tool is used: compile
// (or load) assembly, transform, emit.
//
// Usage:
//
//	ferrum -in prog.ll -o prot.s                 # IR input, FERRUM protection
//	ferrum -in prog.s -asm -technique hybrid     # assembly input
//	ferrum -in prog.ll -technique ir-eddi -stats
//	ferrum -in prog.ll -zmm -batch 8             # AVX-512 batching
//
// Input is IR text by default; -asm switches to assembly input (assembly
// input supports the ferrum and hybrid techniques, which operate at
// assembly level).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ferrum/internal/asm"
	"ferrum/internal/core"
	"ferrum/internal/ferrumpass"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ferrum:", err)
		os.Exit(1)
	}
}

func run(argv []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("ferrum", flag.ContinueOnError)
	var (
		inPath    = fs.String("in", "", "input file (IR text, or assembly with -asm)")
		outPath   = fs.String("o", "", "output file (default: stdout)")
		asmInput  = fs.Bool("asm", false, "input is assembly rather than IR")
		technique = fs.String("technique", "ferrum", "protection: ferrum, hybrid, ir-eddi, none")
		batch     = fs.Int("batch", 0, "FERRUM SIMD batch size (0 = default)")
		zmm       = fs.Bool("zmm", false, "use 512-bit ZMM batching (AVX-512)")
		noSIMD    = fs.Bool("nosimd", false, "disable FERRUM's SIMD path (ablation)")
		ratio     = fs.Float64("ratio", 1, "selective protection fraction (SDCTune-style)")
		stats     = fs.Bool("stats", false, "print transform statistics to stderr")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	src, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}

	pipe := core.New()
	pipe.Ferrum = ferrumpass.Config{BatchSize: *batch, UseZMM: *zmm, DisableSIMD: *noSIMD}
	if *ratio < 1 {
		pipe.Ferrum.Select = ferrumpass.SelectRatio(*ratio, 1)
	}

	var prog *asm.Program
	var report string
	ferrumReport := func(rep *ferrumpass.Report) string {
		return fmt.Sprintf("ferrum: %d simd-enabled, %d general, %d comparisons, %d batches, %d requisitions, %v",
			rep.SIMDEnabled, rep.General, rep.Comparisons, rep.Batches, rep.Requisitions, rep.Duration)
	}
	if *asmInput {
		in, err := pipe.ParseASM(string(src))
		if err != nil {
			return err
		}
		switch *technique {
		case "ferrum":
			prot, rep, err := pipe.Protect(in)
			if err != nil {
				return err
			}
			prog, report = prot, ferrumReport(rep)
		case "hybrid":
			prot, rep, err := pipe.ProtectHybrid(in)
			if err != nil {
				return err
			}
			prog = prot
			report = fmt.Sprintf("hybrid: %d protected, %d checks", rep.Protected, rep.Checks)
		case "none":
			prog = in
		default:
			return fmt.Errorf("technique %q needs IR input", *technique)
		}
	} else {
		mod, err := pipe.ParseIR(string(src))
		if err != nil {
			return err
		}
		switch *technique {
		case "ferrum":
			prot, rep, err := pipe.ProtectModuleFerrum(mod)
			if err != nil {
				return err
			}
			prog, report = prot, ferrumReport(rep)
		case "hybrid":
			prot, err := pipe.ProtectModuleHybrid(mod)
			if err != nil {
				return err
			}
			prog = prot
		case "ir-eddi":
			prot, err := pipe.ProtectModuleIREDDI(mod)
			if err != nil {
				return err
			}
			prog = prot
		case "none":
			raw, err := pipe.Compile(mod)
			if err != nil {
				return err
			}
			prog = raw
		default:
			return fmt.Errorf("unknown technique %q", *technique)
		}
	}

	text := prog.String()
	if *outPath == "" {
		fmt.Fprint(out, text)
	} else if err := os.WriteFile(*outPath, []byte(text), 0o644); err != nil {
		return err
	}
	if *stats && report != "" {
		fmt.Fprintln(errOut, report)
	}
	return nil
}
