package main

import (
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table I") || !strings.Contains(out.String(), "ferrum") {
		t.Errorf("table1 output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exp", "table2", "-bench", "bfs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bfs") {
		t.Errorf("table2 output:\n%s", out.String())
	}
}

func TestRunSmallCampaigns(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig11", "-bench", "bfs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 11") {
		t.Errorf("fig11 output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exp", "fig10", "-bench", "bfs", "-samples", "60"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 10") {
		t.Errorf("fig10 output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exp", "profile", "-bench", "bfs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Dynamic attribution") {
		t.Errorf("profile output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exp", "exectime", "-bench", "bfs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IV-B3") {
		t.Errorf("exectime output:\n%s", out.String())
	}
}

// captureStderr swaps the package stderr writer for a buffer for one test.
func captureStderr(t *testing.T) *strings.Builder {
	t.Helper()
	old := errw
	var buf strings.Builder
	errw = &buf
	t.Cleanup(func() { errw = old })
	return &buf
}

func TestProgressAndSummary(t *testing.T) {
	stderr := captureStderr(t)
	var out strings.Builder
	if err := run([]string{"-exp", "fig10", "-bench", "bfs", "-samples", "60", "-progress", "-cell-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := stderr.String()
	for _, needle := range []string{"[fig10] bfs/raw", "done in", "inj/s", "suite:", "builds: 4 unique", "cache hits"} {
		if !strings.Contains(got, needle) {
			t.Errorf("stderr missing %q:\n%s", needle, got)
		}
	}
	if strings.Contains(out.String(), "suite:") {
		t.Error("suite summary leaked into stdout (must not perturb table output)")
	}
}

func TestSummaryWithoutProgress(t *testing.T) {
	stderr := captureStderr(t)
	var out strings.Builder
	if err := run([]string{"-exp", "fig11", "-bench", "bfs"}, &out); err != nil {
		t.Fatal(err)
	}
	got := stderr.String()
	if strings.Contains(got, "[fig11]") {
		t.Errorf("per-cell progress printed without -progress:\n%s", got)
	}
	if !strings.Contains(got, "suite:") || !strings.Contains(got, "goldens: 4 unique") {
		t.Errorf("suite summary missing or wrong:\n%s", got)
	}
}

// TestSeedZeroDistinct: -seed 0 must run seed 0, not silently fall back to
// the default seed (the footgun this release fixed).
func TestSeedZeroDistinct(t *testing.T) {
	captureStderr(t)
	var zero, def strings.Builder
	if err := run([]string{"-exp", "fig11", "-bench", "bfs", "-seed", "0"}, &zero); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig11", "-bench", "bfs"}, &def); err != nil {
		t.Fatal(err)
	}
	if zero.String() == def.String() {
		t.Error("-seed 0 produced the default-seed table; zero is not being honoured")
	}
}

// TestCellWorkersIdenticalOutput is the CLI-level determinism guarantee:
// any -cell-workers value yields byte-identical stdout.
func TestCellWorkersIdenticalOutput(t *testing.T) {
	captureStderr(t)
	var w1, w8 strings.Builder
	if err := run([]string{"-exp", "fig10", "-bench", "bfs,knn", "-samples", "60", "-cell-workers", "1"}, &w1); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig10", "-bench", "bfs,knn", "-samples", "60", "-cell-workers", "8"}, &w8); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w8.String() {
		t.Errorf("outputs differ:\n%s\n---\n%s", w1.String(), w8.String())
	}
}

// TestNoCheckpointIdenticalOutput is the CLI-level equivalence guarantee:
// checkpointed fast-forwarding must not change a single stdout byte.
func TestNoCheckpointIdenticalOutput(t *testing.T) {
	stderr := captureStderr(t)
	var ck, direct strings.Builder
	if err := run([]string{"-exp", "fig10", "-bench", "bfs,knn", "-samples", "60"}, &ck); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "checkpointing:") {
		t.Errorf("stderr summary missing checkpointing counters:\n%s", stderr.String())
	}
	if err := run([]string{"-exp", "fig10", "-bench", "bfs,knn", "-samples", "60", "-no-checkpoint"}, &direct); err != nil {
		t.Fatal(err)
	}
	if ck.String() != direct.String() {
		t.Errorf("outputs differ:\n%s\n---\n%s", ck.String(), direct.String())
	}
	if strings.Contains(ck.String(), "checkpointing:") {
		t.Error("checkpointing counters leaked into stdout")
	}
}

// TestCheckpointEveryOverride pins the -checkpoint-every flag: a forced
// interval still yields identical tables.
func TestCheckpointEveryOverride(t *testing.T) {
	captureStderr(t)
	var forced, auto strings.Builder
	if err := run([]string{"-exp", "fig11", "-bench", "bfs", "-checkpoint-every", "17"}, &forced); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig11", "-bench", "bfs"}, &auto); err != nil {
		t.Fatal(err)
	}
	if forced.String() != auto.String() {
		t.Errorf("outputs differ:\n%s\n---\n%s", forced.String(), auto.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "bogus"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-exp", "fig11", "-bench", "nope"}, &out); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-notaflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
