package main

import (
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table I") || !strings.Contains(out.String(), "ferrum") {
		t.Errorf("table1 output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exp", "table2", "-bench", "bfs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "bfs") {
		t.Errorf("table2 output:\n%s", out.String())
	}
}

func TestRunSmallCampaigns(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig11", "-bench", "bfs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 11") {
		t.Errorf("fig11 output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exp", "fig10", "-bench", "bfs", "-samples", "60"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 10") {
		t.Errorf("fig10 output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exp", "profile", "-bench", "bfs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Dynamic attribution") {
		t.Errorf("profile output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exp", "exectime", "-bench", "bfs"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "IV-B3") {
		t.Errorf("exectime output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "bogus"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-exp", "fig11", "-bench", "nope"}, &out); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-notaflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
