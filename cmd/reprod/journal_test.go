package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalResumeIdenticalOutput drives the crash-resume workflow end to
// end through the CLI: a journaled fig10 run, a simulated kill (the journal
// truncated mid-record), and a -resume run whose stdout is byte-identical
// to an uninterrupted invocation.
func TestJournalResumeIdenticalOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.ndjson")
	args := []string{"-exp", "fig10", "-bench", "bfs", "-samples", "60"}

	var want strings.Builder
	if err := run(args, &want); err != nil {
		t.Fatal(err)
	}

	var out1 strings.Builder
	if err := run(append(args, "-journal", path), &out1); err != nil {
		t.Fatal(err)
	}
	if out1.String() != want.String() {
		t.Error("journaled run's stdout differs from the baseline")
	}

	// Simulate the kill: chop the journal to two thirds, usually mid-record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	stderr := captureStderr(t)
	var out2 strings.Builder
	if err := run(append(args, "-journal", path, "-resume"), &out2); err != nil {
		t.Fatal(err)
	}
	if out2.String() != want.String() {
		t.Errorf("resumed stdout is not byte-identical:\n%s\n---\n%s", out2.String(), want.String())
	}
	if !strings.Contains(stderr.String(), "journal: resuming") {
		t.Errorf("stderr missing resume notice:\n%s", stderr.String())
	}

	// A second resume finds every cell complete and still renders the same
	// bytes without re-running campaigns.
	var out3 strings.Builder
	if err := run(append(args, "-journal", path, "-resume"), &out3); err != nil {
		t.Fatal(err)
	}
	if out3.String() != want.String() {
		t.Error("fully journaled resume's stdout is not byte-identical")
	}
}

// TestJournalResumeGuards: -resume needs -journal, and a journal recorded
// under different campaign-shaping flags is refused.
func TestJournalResumeGuards(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "table1", "-resume"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-resume requires -journal") {
		t.Errorf("-resume without -journal: err = %v", err)
	}

	path := filepath.Join(t.TempDir(), "suite.ndjson")
	if err := run([]string{"-exp", "fig11", "-bench", "bfs", "-samples", "50", "-journal", path}, &out); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-exp", "fig11", "-bench", "bfs", "-samples", "51", "-journal", path, "-resume"}, &out)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("mismatched -samples resume: err = %v", err)
	}
}
