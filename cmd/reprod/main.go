// Command reprod regenerates the paper's evaluation: Table I, Table II,
// fig. 10 (SDC coverage), fig. 11 (runtime overhead), the §IV-B3 FERRUM
// transform-time measurement, the cross-layer anticipated-vs-measured
// coverage gap, and two extension experiments (overhead attribution and
// input variation).
//
// All experiments in one invocation share a build cache, so each
// (benchmark, technique, optimize) build and golden run happens exactly
// once; independent campaign cells run concurrently (bounded by
// -cell-workers) without changing any table byte. -progress streams live
// cell status to stderr; a suite summary rendered from the observability
// registry always goes to stderr at the end.
//
// The whole pipeline is instrumented through internal/obs: every phase
// (builds, golden runs, snapshot recording, injection loops, table renders)
// is a span attributed to the scheduler cell and worker lane that ran it.
// -events-out streams spans and final counters as NDJSON; -trace-out writes
// a Chrome trace_event JSON that loads directly in Perfetto
// (ui.perfetto.dev) with one timeline row per cell-worker lane;
// -cpuprofile/-memprofile capture stdlib pprof profiles.
//
// Usage:
//
//	reprod                       # everything, paper-scale campaigns
//	reprod -exp fig10 -samples 500
//	reprod -exp fig11 -bench bfs,knn
//	reprod -exp profile          # where does the overhead go
//	reprod -progress             # live per-cell status on stderr
//	reprod -events-out run.ndjson -trace-out run.trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/harness"
	"ferrum/internal/obs"
)

// errw carries progress and the suite summary; tests swap it for a buffer.
var errw io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reprod:", err)
		os.Exit(1)
	}
}

func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	var (
		exp         = fs.String("exp", "all", "experiment: all, table1, table2, fig10, fig11, exectime, gap, profile, variation")
		samples     = fs.Int("samples", 1000, "fault injections per campaign cell")
		seed        = fs.Int64("seed", harness.DefaultSeed, "RNG seed (any value, including 0, is honoured)")
		scale       = fs.Int("scale", 1, "benchmark scale factor")
		benches     = fs.String("bench", "", "comma-separated benchmark subset (default: all eight)")
		workers     = fs.Int("workers", 0, "intra-campaign parallelism (0 = GOMAXPROCS/cell-workers)")
		cellWorkers = fs.Int("cell-workers", 0, "concurrent campaign cells (0 = GOMAXPROCS); any value yields identical tables")
		progress    = fs.Bool("progress", false, "stream live cell status to stderr")
		o1          = fs.Bool("O1", false, "run builds through the peephole optimizer before protection")
		noCkpt      = fs.Bool("no-checkpoint", false, "disable checkpointed fast-forwarding (identical tables, slower campaigns)")
		ckptEvery   = fs.Uint64("checkpoint-every", 0, "snapshot spacing K in dynamic sites (0 = auto-tune per cell)")
		journalPath = fs.String("journal", "", "write a crash-safe campaign journal (NDJSON) to this file; resume an interrupted run with -resume")
		resume      = fs.Bool("resume", false, "resume from the -journal file of an interrupted run: journaled plans and cells are not re-run, tables are byte-identical")
		cellTimeout = fs.Duration("cell-timeout", 0, "per-cell watchdog: cancel and record any cell still running after this long (0 = off)")
		maxRetries  = fs.Int("max-retries", 0, "re-attempt a transiently failing cell up to this many extra times")
		retryBack   = fs.Duration("retry-backoff", 0, "sleep before the first cell retry, doubled each further attempt")
		ciWidth     = fs.Float64("ci-width", 0, "stop each campaign early once the 95% CI of its SDC rate is no wider than this (0 = off)")
		pruneMode   = fs.String("prune", "off", "static fault-site pruning for asm campaigns: off, dead (exact), exact (dead+masked), full (adds class dedup, statistical)")
		compMode    = fs.String("compose", "off", "compositional asm campaigns: off, on (sectioned at checkpoint boundaries, per-section tables cached across cells), validate (also run each monolithic campaign and gate the composed rates)")
		dumpFusion  = fs.Int("dump-fusion", 0, "print the top N fused superinstruction patterns by dynamic executions to stderr")
		serveAddr   = fs.String("serve", "", "serve live observability over HTTP on this address (host:port; :0 picks a port): /metrics, /progress, /debug/pprof")
		serveDrain  = fs.Duration("serve-drain", 0, "with -serve: after the run completes, keep serving until one more /metrics scrape lands or this much time passes (0 = exit immediately)")
		eventsOut   = fs.String("events-out", "", "write NDJSON observability events (spans + final metrics) to this file")
		traceOut    = fs.String("trace-out", "", "write a Chrome trace_event JSON (Perfetto-loadable timeline) to this file")
		cpuProfile  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = fs.String("memprofile", "", "write a pprof heap profile to this file")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	ob := obs.New()

	// -serve: live observatory. /metrics snapshots the same registry the
	// end-of-run summary renders from; /progress replays the NDJSON event
	// stream to HTTP clients through a broadcast hub.
	var hub *obs.Hub
	var server *obs.Server
	if *serveAddr != "" {
		hub = obs.NewHub()
		srv, err := obs.StartServer(*serveAddr, ob.Reg.Snapshot, hub)
		if err != nil {
			return err
		}
		server = srv
		defer server.Close()
		fmt.Fprintf(errw, "serving http://%s (/metrics, /progress, /debug/pprof)\n", server.Addr())
	}
	var events *obs.NDJSON
	var sink io.Writer
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
		if hub != nil {
			sink = io.MultiWriter(f, hub)
		}
	} else if hub != nil {
		sink = hub
	}
	if sink != nil {
		events = obs.NewNDJSON(sink, time.Time{})
		events.Attach(ob.Trace)
		events.Meta("reprod", argv)
	}

	prune, err := fi.ParsePruneMode(*pruneMode)
	if err != nil {
		return err
	}
	if prune != fi.PruneOff && *ciWidth > 0 {
		return fmt.Errorf("-prune is incompatible with -ci-width (pruned campaigns have no uniform plan prefix)")
	}
	composeMode, err := fi.ParseComposeMode(*compMode)
	if err != nil {
		return err
	}
	if composeMode != fi.ComposeOff {
		if prune != fi.PruneOff {
			return fmt.Errorf("-compose is incompatible with -prune (pruned campaigns have no per-section plan strata)")
		}
		if *ciWidth > 0 {
			return fmt.Errorf("-compose is incompatible with -ci-width (per-section budgets are fixed up front)")
		}
		if *noCkpt {
			return fmt.Errorf("-compose requires checkpointing (sections are cut at checkpoint boundaries); drop -no-checkpoint")
		}
	}

	opts := harness.Options{
		Samples: *samples, Seed: *seed, Scale: *scale, Workers: *workers,
		Optimize: *o1, CellWorkers: *cellWorkers, Cache: harness.NewBuildCache(),
		NoCheckpoint: *noCkpt, CheckpointEvery: *ckptEvery,
		CellTimeout: *cellTimeout, MaxRetries: *maxRetries, RetryBackoff: *retryBack,
		CIWidth: *ciWidth, Prune: prune, Compose: composeMode,
		Obs: ob,
	}
	if *progress {
		opts.Progress = func(ev harness.CellEvent) {
			if !ev.Done {
				fmt.Fprintf(errw, "[%s] %s ...\n", ev.Experiment, ev.Cell)
				return
			}
			rate := ""
			if ev.Injections > 0 && ev.Wall > 0 {
				rate = fmt.Sprintf(", %.0f inj/s", float64(ev.Injections)/ev.Wall.Seconds())
			}
			status := "done"
			if ev.Err != nil {
				status = "FAILED: " + ev.Err.Error()
			}
			fmt.Fprintf(errw, "[%s] %s %s in %v (%d inj%s) [%d/%d]\n",
				ev.Experiment, ev.Cell, status, ev.Wall.Round(time.Millisecond),
				ev.Injections, rate, ev.Index+1, ev.Total)
		}
	}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			opts.Benchmarks = append(opts.Benchmarks, strings.TrimSpace(b))
		}
	}

	// Durable campaigns: -journal makes every campaign cell crash-safe,
	// -resume replays a prior journal so only unfinished work re-runs. The
	// meta record fingerprints everything that shapes fault plans; resume
	// refuses a journal recorded under a different configuration.
	if *resume && *journalPath == "" {
		return fmt.Errorf("-resume requires -journal")
	}
	var journal *fi.Journal
	if *journalPath != "" {
		meta := fi.JournalMeta{
			Tool: "reprod", Exp: *exp, Seed: *seed, Samples: *samples,
			Scale: *scale, Optimize: *o1, Benchmarks: opts.Benchmarks,
			CIWidth: *ciWidth,
		}
		if prune != fi.PruneOff {
			meta.Prune = prune.String()
		}
		if composeMode != fi.ComposeOff {
			meta.Compose = composeMode.String()
		}
		if *resume {
			st, j, err := fi.ResumeJournal(*journalPath)
			if err != nil {
				return err
			}
			if err := st.Meta.Check(meta); err != nil {
				j.Close()
				return err
			}
			if st.TornDropped {
				fmt.Fprintln(errw, "journal: dropped a torn trailing record; its plan will re-run")
			}
			complete, partial := st.Cells()
			fmt.Fprintf(errw, "journal: resuming %s (%d complete cells, %d partial)\n",
				*journalPath, complete, partial)
			opts.Resume, journal = st, j
		} else {
			j, err := fi.CreateJournal(*journalPath, meta)
			if err != nil {
				return err
			}
			journal = j
		}
		opts.Journal = journal
		defer journal.Close()
	}

	// render wraps a table render in a main-lane span, so the trace shows
	// where the wall-clock between experiments went.
	mainCx := ob.Cell("", 0)
	render := func(table, text string) {
		sp := mainCx.Span("render")
		sp.SetAttr("table", table)
		fmt.Fprintln(out, text)
		sp.End()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	start := time.Now()

	if want("table1") {
		ran = true
		render("table1", harness.RenderTable1())
	}
	if want("table2") {
		ran = true
		rows, err := harness.Table2(opts)
		if err != nil {
			return err
		}
		render("table2", harness.RenderTable2(rows))
	}
	if want("fig10") {
		ran = true
		fmt.Fprintln(out, "running fig. 10 campaigns (this is the expensive one)...")
		rows, err := harness.Fig10(opts)
		if err != nil {
			return err
		}
		render("fig10", harness.RenderFig10(rows))
		render("latency", harness.RenderLatency(rows))
	}
	if want("fig11") {
		ran = true
		rows, err := harness.Fig11(opts)
		if err != nil {
			return err
		}
		render("fig11", harness.RenderFig11(rows))
	}
	if want("exectime") {
		ran = true
		rows, err := harness.ExecTime(opts)
		if err != nil {
			return err
		}
		render("exectime", harness.RenderExecTime(rows))
	}
	if want("profile") {
		ran = true
		rows, err := harness.Profile(opts)
		if err != nil {
			return err
		}
		render("profile", harness.RenderProfile(rows))
	}
	if want("variation") {
		ran = true
		rows, err := harness.Variation(opts, 5)
		if err != nil {
			return err
		}
		render("variation", harness.RenderVariation(rows))
	}
	if want("gap") {
		ran = true
		fmt.Fprintln(out, "running cross-layer gap campaigns...")
		rows, err := harness.Gap(opts)
		if err != nil {
			return err
		}
		render("gap", harness.RenderGap(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if err := journal.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// The campaign counters are frozen from here on. Scrapes answered before
	// this point may predate them; the drain window at the end waits for one
	// that doesn't — a watcher that reacts to the summary below always gets
	// the final counters.
	scrapesBeforeSummary := server.Scrapes()

	// One snapshot feeds both the human summary and the NDJSON metrics
	// record, so the two always reconcile exactly.
	snap := ob.Reg.Snapshot()
	spans := ob.Trace.Spans()
	obs.RenderSummary(errw, snap, time.Since(start), spans)
	if *dumpFusion > 0 {
		obs.RenderFusion(errw, snap, *dumpFusion)
	}
	if events != nil {
		events.Metrics(snap)
		if err := events.Err(); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := obs.WriteTrace(f, spans, ob.Trace.Epoch()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	// Drain window: hold the endpoint open until a post-summary scrape reads
	// the frozen counters — CI reconciles against it.
	if server != nil && *serveDrain > 0 {
		server.AwaitScrape(scrapesBeforeSummary, *serveDrain)
	}
	return nil
}
