// Command reprod regenerates the paper's evaluation: Table I, Table II,
// fig. 10 (SDC coverage), fig. 11 (runtime overhead), the §IV-B3 FERRUM
// transform-time measurement, the cross-layer anticipated-vs-measured
// coverage gap, and two extension experiments (overhead attribution and
// input variation).
//
// All experiments in one invocation share a build cache, so each
// (benchmark, technique, optimize) build and golden run happens exactly
// once; independent campaign cells run concurrently (bounded by
// -cell-workers) without changing any table byte. -progress streams live
// cell status to stderr; a suite summary with cache counters always goes
// to stderr at the end.
//
// Usage:
//
//	reprod                       # everything, paper-scale campaigns
//	reprod -exp fig10 -samples 500
//	reprod -exp fig11 -bench bfs,knn
//	reprod -exp profile          # where does the overhead go
//	reprod -progress             # live per-cell status on stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"ferrum/internal/fi"
	"ferrum/internal/harness"
)

// errw carries progress and the suite summary; tests swap it for a buffer.
var errw io.Writer = os.Stderr

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reprod:", err)
		os.Exit(1)
	}
}

// suiteStats accumulates scheduler events across all experiments of one
// invocation for the closing summary.
type suiteStats struct {
	mu         sync.Mutex
	cells      int
	injections int64
	campaign   time.Duration // summed cell wall-clock
}

func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	var (
		exp         = fs.String("exp", "all", "experiment: all, table1, table2, fig10, fig11, exectime, gap, profile, variation")
		samples     = fs.Int("samples", 1000, "fault injections per campaign cell")
		seed        = fs.Int64("seed", harness.DefaultSeed, "RNG seed (any value, including 0, is honoured)")
		scale       = fs.Int("scale", 1, "benchmark scale factor")
		benches     = fs.String("bench", "", "comma-separated benchmark subset (default: all eight)")
		workers     = fs.Int("workers", 0, "intra-campaign parallelism (0 = GOMAXPROCS/cell-workers)")
		cellWorkers = fs.Int("cell-workers", 0, "concurrent campaign cells (0 = GOMAXPROCS); any value yields identical tables")
		progress    = fs.Bool("progress", false, "stream live cell status to stderr")
		o1          = fs.Bool("O1", false, "run builds through the peephole optimizer before protection")
		noCkpt      = fs.Bool("no-checkpoint", false, "disable checkpointed fast-forwarding (identical tables, slower campaigns)")
		ckptEvery   = fs.Uint64("checkpoint-every", 0, "snapshot spacing K in dynamic sites (0 = auto-tune per cell)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	cache := harness.NewBuildCache()
	stats := &suiteStats{}
	ckptStats := &fi.CampaignStats{}
	opts := harness.Options{
		Samples: *samples, Seed: *seed, Scale: *scale, Workers: *workers,
		Optimize: *o1, CellWorkers: *cellWorkers, Cache: cache,
		NoCheckpoint: *noCkpt, CheckpointEvery: *ckptEvery, CampaignStats: ckptStats,
		Progress: func(ev harness.CellEvent) {
			// The scheduler serialises callbacks within one experiment and
			// experiments run sequentially, but keep the accounting locked
			// so the invariant doesn't depend on that.
			stats.mu.Lock()
			defer stats.mu.Unlock()
			if !ev.Done {
				if *progress {
					fmt.Fprintf(errw, "[%s] %s ...\n", ev.Experiment, ev.Cell)
				}
				return
			}
			stats.cells++
			stats.injections += int64(ev.Injections)
			stats.campaign += ev.Wall
			if *progress {
				rate := ""
				if ev.Injections > 0 && ev.Wall > 0 {
					rate = fmt.Sprintf(", %.0f inj/s", float64(ev.Injections)/ev.Wall.Seconds())
				}
				status := "done"
				if ev.Err != nil {
					status = "FAILED: " + ev.Err.Error()
				}
				fmt.Fprintf(errw, "[%s] %s %s in %v (%d inj%s) [%d/%d]\n",
					ev.Experiment, ev.Cell, status, ev.Wall.Round(time.Millisecond),
					ev.Injections, rate, ev.Index+1, ev.Total)
			}
		},
	}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			opts.Benchmarks = append(opts.Benchmarks, strings.TrimSpace(b))
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false
	start := time.Now()

	if want("table1") {
		ran = true
		fmt.Fprintln(out, harness.RenderTable1())
	}
	if want("table2") {
		ran = true
		rows, err := harness.Table2(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderTable2(rows))
	}
	if want("fig10") {
		ran = true
		fmt.Fprintln(out, "running fig. 10 campaigns (this is the expensive one)...")
		rows, err := harness.Fig10(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFig10(rows))
	}
	if want("fig11") {
		ran = true
		rows, err := harness.Fig11(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFig11(rows))
	}
	if want("exectime") {
		ran = true
		rows, err := harness.ExecTime(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderExecTime(rows))
	}
	if want("profile") {
		ran = true
		rows, err := harness.Profile(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderProfile(rows))
	}
	if want("variation") {
		ran = true
		rows, err := harness.Variation(opts, 5)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderVariation(rows))
	}
	if want("gap") {
		ran = true
		fmt.Fprintln(out, "running cross-layer gap campaigns...")
		rows, err := harness.Gap(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderGap(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	cs := cache.Stats()
	stats.mu.Lock()
	fmt.Fprintf(errw,
		"suite: %d cells, %d injections, %v wall (%v summed cell time); "+
			"builds: %d unique, %d cache hits; goldens: %d unique, %d cache hits\n",
		stats.cells, stats.injections, time.Since(start).Round(time.Millisecond),
		stats.campaign.Round(time.Millisecond),
		cs.BuildMisses, cs.BuildHits, cs.GoldenMisses, cs.GoldenHits)
	stats.mu.Unlock()
	if n := ckptStats.Campaigns.Load(); n > 0 {
		fmt.Fprintf(errw,
			"checkpointing: %d campaigns, %d snapshots (%d KiB), "+
				"%d restores, %d cold starts, %d insts skipped\n",
			n, ckptStats.Snapshots.Load(), ckptStats.SnapshotBytes.Load()>>10,
			ckptStats.Restores.Load(), ckptStats.ColdStarts.Load(),
			ckptStats.SkippedInsts.Load())
	}
	return nil
}
