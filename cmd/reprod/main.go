// Command reprod regenerates the paper's evaluation: Table I, Table II,
// fig. 10 (SDC coverage), fig. 11 (runtime overhead), the §IV-B3 FERRUM
// transform-time measurement, the cross-layer anticipated-vs-measured
// coverage gap, and two extension experiments (overhead attribution and
// input variation).
//
// Usage:
//
//	reprod                       # everything, paper-scale campaigns
//	reprod -exp fig10 -samples 500
//	reprod -exp fig11 -bench bfs,knn
//	reprod -exp profile          # where does the overhead go
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ferrum/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reprod:", err)
		os.Exit(1)
	}
}

func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("reprod", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment: all, table1, table2, fig10, fig11, exectime, gap, profile, variation")
		samples = fs.Int("samples", 1000, "fault injections per campaign cell")
		seed    = fs.Int64("seed", 20240624, "RNG seed")
		scale   = fs.Int("scale", 1, "benchmark scale factor")
		benches = fs.String("bench", "", "comma-separated benchmark subset (default: all eight)")
		workers = fs.Int("workers", 0, "campaign parallelism (0 = GOMAXPROCS)")
		o1      = fs.Bool("O1", false, "run builds through the peephole optimizer before protection")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	opts := harness.Options{Samples: *samples, Seed: *seed, Scale: *scale, Workers: *workers, Optimize: *o1}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			opts.Benchmarks = append(opts.Benchmarks, strings.TrimSpace(b))
		}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		ran = true
		fmt.Fprintln(out, harness.RenderTable1())
	}
	if want("table2") {
		ran = true
		rows, err := harness.Table2(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderTable2(rows))
	}
	if want("fig10") {
		ran = true
		fmt.Fprintln(out, "running fig. 10 campaigns (this is the expensive one)...")
		rows, err := harness.Fig10(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFig10(rows))
	}
	if want("fig11") {
		ran = true
		rows, err := harness.Fig11(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderFig11(rows))
	}
	if want("exectime") {
		ran = true
		rows, err := harness.ExecTime(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderExecTime(rows))
	}
	if want("profile") {
		ran = true
		rows, err := harness.Profile(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderProfile(rows))
	}
	if want("variation") {
		ran = true
		rows, err := harness.Variation(opts, 5)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderVariation(rows))
	}
	if want("gap") {
		ran = true
		fmt.Fprintln(out, "running cross-layer gap campaigns...")
		rows, err := harness.Gap(opts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, harness.RenderGap(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
