package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ferrum/internal/fi"
	"ferrum/internal/obs"
)

// writeJournal crafts a two-cell journal: one complete cell with a frozen
// Result (including latency buckets), one partial cell with plan records
// only — the two shapes fistat must render.
func writeJournal(t *testing.T, path string) {
	t.Helper()
	j, err := fi.CreateJournal(path, fi.JournalMeta{Tool: "test", Seed: 7, Samples: 4})
	if err != nil {
		t.Fatal(err)
	}
	j.Plan("bfs/ferrum/asm", 0, fi.Detected, 10, 8, true, false)
	j.Plan("bfs/ferrum/asm", 1, fi.Benign, 20, 4000, true, false)
	j.Plan("bfs/ferrum/asm", 2, fi.Detected, 30, 16, true, false)
	j.Plan("bfs/ferrum/asm", 3, fi.Crash, 40, 2, true, false)
	var res fi.Result
	res.Samples = 4
	res.Counts[fi.Benign] = 1
	res.Counts[fi.Detected] = 2
	res.Counts[fi.Crash] = 1
	res.Latency.Observe(fi.Detected, 8)
	res.Latency.Observe(fi.Benign, 4000)
	res.Latency.Observe(fi.Detected, 16)
	res.Latency.Observe(fi.Crash, 2)
	res.Latency.Unit = "cycles"
	j.Cell("bfs/ferrum/asm", res)
	j.Plan("bfs/raw/asm", 0, fi.SDC, 11, 100, true, false)
	j.Plan("bfs/raw/asm", 1, fi.Crash, 12, 3, true, false)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	writeJournal(t, path)
	var out strings.Builder
	if err := run([]string{"-journal", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{
		"cells: 1 complete, 1 partial",
		"bfs/ferrum/asm",
		"outcomes: 6 plans across 2 campaigns",
		"detection latency by technique",
		"ferrum     cycles",
		"per-site outcomes",
		"hottest sites",
	} {
		if !strings.Contains(s, needle) {
			t.Errorf("report missing %q:\n%s", needle, s)
		}
	}
	// The partial raw cell's SDC fault must appear in the strip as S.
	if !strings.Contains(s, "S") {
		t.Errorf("site strip missing SDC marker:\n%s", s)
	}
}

func TestReportLatencyMatchesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	writeJournal(t, path)
	var out strings.Builder
	if err := run([]string{"-journal", path}, &out); err != nil {
		t.Fatal(err)
	}
	// detected: n=2, mean=(8+16)/2=12, p50<=8, p90<=16 on power-of-two buckets.
	if !strings.Contains(out.String(), "detected  2  12    8      16") {
		t.Errorf("detected latency row wrong:\n%s", out.String())
	}
}

func TestReconcile(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "j.ndjson")
	// Reconcile requires a completed run: a single complete cell.
	j, err := fi.CreateJournal(jp, fi.JournalMeta{Tool: "test", Seed: 7, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	var res fi.Result
	res.Samples = 3
	res.Counts[fi.Detected] = 2
	res.Counts[fi.Crash] = 1
	res.Latency.Observe(fi.Detected, 5)
	res.Latency.Observe(fi.Detected, 300)
	res.Latency.Observe(fi.Crash, 2)
	res.Latency.Unit = "cycles"
	j.Cell("bfs/ferrum/asm", res)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The scrape a -serve run would answer: the same counters and bucket
	// folds observeOutcomes publishes.
	reg := obs.NewRegistry()
	reg.Counter("fi.campaigns").Add(1)
	reg.Counter("fi.plans").Add(3)
	reg.Counter("fi.outcome.detected").Add(2)
	reg.Counter("fi.outcome.crash").Add(1)
	for _, o := range []fi.Outcome{fi.Detected, fi.Crash} {
		h := res.Latency.Hist(o)
		reg.Histogram("fi.detect_latency.cycles."+o.String(), fi.LatencyBuckets).
			AddBuckets(h.Counts, h.Sum, h.N)
	}
	mp := filepath.Join(dir, "metrics.txt")
	f, err := os.Create(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WritePrometheus(f, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out strings.Builder
	if err := run([]string{"-journal", jp, "-reconcile", mp}, &out); err != nil {
		t.Fatalf("reconcile failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "reconcile: OK") {
		t.Errorf("missing OK line:\n%s", out.String())
	}

	// Tamper with one bucket: reconcile must fail loudly.
	data, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `fi_detect_latency_cycles_crash_bucket{le="2"} 1`,
		`fi_detect_latency_cycles_crash_bucket{le="2"} 2`, 1)
	if tampered == string(data) {
		t.Fatalf("tamper target not found in scrape:\n%s", data)
	}
	if err := os.WriteFile(mp, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-journal", jp, "-reconcile", mp}, &out); err == nil {
		t.Fatalf("tampered scrape reconciled:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "bucket le=2") {
		t.Errorf("mismatch report missing bucket detail:\n%s", out.String())
	}
}

func TestReconcileRefusesPartial(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "j.ndjson")
	writeJournal(t, jp) // has a partial cell
	mp := filepath.Join(dir, "m.txt")
	if err := os.WriteFile(mp, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-journal", jp, "-reconcile", mp}, &out); err == nil ||
		!strings.Contains(err.Error(), "partial") {
		t.Errorf("partial journal reconciled: %v", err)
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson")
	writeJournal(t, a)
	// b: same cells, but raw's SDC became detected (a protection win).
	j, err := fi.CreateJournal(b, fi.JournalMeta{Tool: "test", Seed: 7, Samples: 4})
	if err != nil {
		t.Fatal(err)
	}
	j.Plan("bfs/raw/asm", 0, fi.Detected, 11, 90, true, false)
	j.Plan("bfs/raw/asm", 1, fi.Crash, 12, 3, true, false)
	j.Plan("only-in-b", 0, fi.Benign, 1, 5, true, false)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-diff", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{"1→0", "0→1", "(a only)", "(b only)", "Δsdc-rate"} {
		if !strings.Contains(s, needle) {
			t.Errorf("diff missing %q:\n%s", needle, s)
		}
	}
}

// composedResult fabricates a completed compositional cell: three sections,
// the middle one carrying a fallback.
func composedResult(fps [3]string) fi.Result {
	var res fi.Result
	res.Samples = 30
	res.Counts[fi.Benign] = 20
	res.Counts[fi.SDC] = 6
	res.Counts[fi.Crash] = 4
	res.Composed = fi.ComposeSummary{
		Enabled: true, Mode: "on", Interval: 10,
		Composed: 30, Sections: 29, Fallbacks: 1,
		Rows: []fi.SectionRow{
			{Start: 0, End: 10, Fingerprint: fps[0], Plans: 10, Counts: [5]int{8, 1, 0, 1, 0}},
			{Start: 10, End: 20, Fingerprint: fps[1], Plans: 10, Fallbacks: 1, Counts: [5]int{6, 3, 0, 1, 0}},
			{Start: 20, End: 30, Fingerprint: fps[2], Plans: 10, Counts: [5]int{6, 2, 0, 2, 0}},
		},
	}
	return res
}

func writeComposedJournal(t *testing.T, path string, fps [3]string) {
	t.Helper()
	j, err := fi.CreateJournal(path, fi.JournalMeta{Tool: "test", Seed: 3, Samples: 30, Compose: "on"})
	if err != nil {
		t.Fatal(err)
	}
	j.Cell("bfs/raw/asm", composedResult(fps))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestComposeReportAndDiff: the per-section propagation table renders from
// the journaled ComposeSummary, and -diff annotates reused vs re-injected
// sections by fingerprint equality.
func TestComposeReportAndDiff(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson")
	writeComposedJournal(t, a, [3]string{"aaaa", "bbbb", "cccc"})
	// b: the edit reached only the middle section.
	writeComposedJournal(t, b, [3]string{"aaaa", "beef", "cccc"})

	var out strings.Builder
	if err := run([]string{"-journal", a}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, needle := range []string{
		"compose (on) bfs/raw/asm: 3 sections at K=10; 29 boundary-classified + 1 fallbacks = 30 plans",
		"fingerprint",
		"10-20",
		"bbbb",
	} {
		if !strings.Contains(s, needle) {
			t.Errorf("compose report missing %q:\n%s", needle, s)
		}
	}

	out.Reset()
	if err := run([]string{"-diff", a, b}, &out); err != nil {
		t.Fatal(err)
	}
	s = out.String()
	for _, needle := range []string{
		"compose sections",
		"bfs/raw/asm: 2/3 sections reused",
		"[=#=]",
		"20 plans servable", // sections 0 and 2: 10 plans each, no fallbacks
	} {
		if !strings.Contains(s, needle) {
			t.Errorf("compose diff missing %q:\n%s", needle, s)
		}
	}
}

func TestWaterfall(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "j.ndjson")
	writeJournal(t, jp)
	ev := filepath.Join(dir, "ev.ndjson")
	lines := []string{
		`{"type":"meta","tool":"fidi","argv":[]}`,
		`{"type":"span","name":"build","cell":"bfs/ferrum","lane":0,"start_us":0,"dur_us":4000}`,
		`{"type":"span","name":"campaign","cell":"bfs/ferrum","lane":0,"start_us":4000,"dur_us":9000}`,
		`{"type":"span","name":"render","lane":0,"start_us":13000,"dur_us":500}`,
	}
	if err := os.WriteFile(ev, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-journal", jp, "-events", ev}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "span waterfall (2 cells over 13.5 ms") {
		t.Errorf("waterfall header wrong:\n%s", s)
	}
	if !strings.Contains(s, "bfs/ferrum") || !strings.Contains(s, "(main)") {
		t.Errorf("waterfall rows missing:\n%s", s)
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no -journal accepted")
	}
	if err := run([]string{"-journal", "/nonexistent"}, &out); err == nil {
		t.Error("missing journal accepted")
	}
	if err := run([]string{"-diff", "only-one.ndjson"}, &out); err == nil {
		t.Error("-diff with one path accepted")
	}
	dir := t.TempDir()
	jp := filepath.Join(dir, "j.ndjson")
	writeJournal(t, jp)
	if err := run([]string{"-journal", jp, "-events", "/nonexistent"}, &out); err == nil {
		t.Error("missing events file accepted")
	}
	if err := run([]string{"-journal", jp, "-reconcile", "/nonexistent"}, &out); err == nil {
		t.Error("missing metrics file accepted")
	}
}
