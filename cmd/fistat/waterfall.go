package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// spanRec mirrors the NDJSON span record written by obs.NDJSON.
type spanRec struct {
	Type    string `json:"type"`
	Name    string `json:"name"`
	Cell    string `json:"cell"`
	Lane    int    `json:"lane"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// waterfall renders a per-cell span waterfall from an -events-out NDJSON
// stream: one row per cell, positioned and scaled on the run's wall-clock,
// so overlap (and scheduling gaps) are visible at a glance.
func waterfall(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	type cellSpan struct {
		cell       string
		lane       int
		start, end int64 // µs, envelope over the cell's spans
		busy       int64 // summed span durations
		spans      int
	}
	cells := map[string]*cellSpan{}
	var order []string
	var minStart, maxEnd int64
	first := true
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec spanRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("events: bad NDJSON line: %w", err)
		}
		if rec.Type != "span" {
			continue
		}
		key := rec.Cell
		if key == "" {
			key = "(main)"
		}
		cs := cells[key]
		if cs == nil {
			cs = &cellSpan{cell: key, lane: rec.Lane, start: rec.StartUS, end: rec.StartUS + rec.DurUS}
			cells[key] = cs
			order = append(order, key)
		}
		if rec.StartUS < cs.start {
			cs.start = rec.StartUS
		}
		if e := rec.StartUS + rec.DurUS; e > cs.end {
			cs.end = e
		}
		cs.busy += rec.DurUS
		cs.spans++
		if first || rec.StartUS < minStart {
			minStart = rec.StartUS
		}
		if e := rec.StartUS + rec.DurUS; first || e > maxEnd {
			maxEnd = e
		}
		first = false
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(cells) == 0 {
		fmt.Fprintf(out, "span waterfall: no span records in %s\n", path)
		return nil
	}
	sort.SliceStable(order, func(i, j int) bool { return cells[order[i]].start < cells[order[j]].start })

	const width = 50
	span := maxEnd - minStart
	if span <= 0 {
		span = 1
	}
	fmt.Fprintf(out, "span waterfall (%d cells over %.1f ms; #=busy window, lane on the right):\n",
		len(cells), float64(span)/1000)
	nameW := 0
	for _, k := range order {
		if len(k) > nameW {
			nameW = len(k)
		}
	}
	for _, k := range order {
		cs := cells[k]
		lead := int(int64(width) * (cs.start - minStart) / span)
		bar := int(int64(width) * (cs.end - cs.start) / span)
		if bar < 1 {
			bar = 1
		}
		if lead+bar > width {
			bar = width - lead
		}
		fmt.Fprintf(out, "  %-*s |%s%s%s| %7.1fms busy=%.1fms lane=%d spans=%d\n",
			nameW, k,
			strings.Repeat(" ", lead), strings.Repeat("#", bar), strings.Repeat(" ", width-lead-bar),
			float64(cs.end-cs.start)/1000, float64(cs.busy)/1000, cs.lane, cs.spans)
	}
	fmt.Fprintln(out)
	return nil
}
