package main

import "strings"

// table is the same right-padded text-table builder the harness renderers
// use, local to keep fistat's dependency surface at fi+obs.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
