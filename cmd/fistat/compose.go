package main

import (
	"fmt"
	"io"

	"ferrum/internal/fi"
)

// composeReport renders the per-section propagation table for every
// completed cell that ran compositionally: one row per section with its
// dynamic-site range, content fingerprint, plan budget, fallback count and
// outcome split. The fingerprint is the section-cache key — two journals
// showing the same fingerprint for a section measured the same code under
// the same entry/exit states, so its table is reusable between them.
func composeReport(out io.Writer, st *fi.JournalState) {
	for _, key := range st.Keys() {
		cs := st.Cell(key)
		if cs.Result == nil || !cs.Result.Composed.Enabled {
			continue
		}
		comp := cs.Result.Composed
		fmt.Fprintf(out, "compose (%s) %s: %d sections at K=%d; %d boundary-classified + %d fallbacks = %d plans\n",
			comp.Mode, key, len(comp.Rows), comp.Interval,
			comp.Sections, comp.Fallbacks, comp.Composed)
		t := newTable("section", "sites", "fingerprint", "plans", "fallback",
			"benign", "sdc", "detected", "crash", "hang", "sdc-rate")
		for i, row := range comp.Rows {
			rate := 0.0
			if row.Plans > 0 {
				rate = float64(row.Counts[fi.SDC]) / float64(row.Plans)
			}
			t.add(fmt.Sprintf("%d", i),
				fmt.Sprintf("%d-%d", row.Start, row.End),
				row.Fingerprint,
				fmt.Sprintf("%d", row.Plans), fmt.Sprintf("%d", row.Fallbacks),
				fmt.Sprintf("%d", row.Counts[fi.Benign]), fmt.Sprintf("%d", row.Counts[fi.SDC]),
				fmt.Sprintf("%d", row.Counts[fi.Detected]), fmt.Sprintf("%d", row.Counts[fi.Crash]),
				fmt.Sprintf("%d", row.Counts[fi.Hang]),
				fmt.Sprintf("%.3f", rate))
		}
		fmt.Fprint(out, t.String())
		if v := comp.Validation; v != nil {
			verdict := "within"
			if !v.OK {
				verdict = "OUTSIDE"
			}
			fmt.Fprintf(out, "validated against monolithic (n=%d): SDC %.3f vs %.3f (tol %.3f), detected %.3f vs %.3f (tol %.3f) — %s tolerance\n",
				v.MonoSamples, v.SDC, v.MonoSDC, v.SDCTol,
				v.Detected, v.MonoDetected, v.DetectedTol, verdict)
		}
		fmt.Fprintln(out)
	}
}

// composeDiff annotates, for every cell composed in both journals, which
// sections a re-run against b's program would re-inject and which it would
// reuse: a section whose fingerprint is unchanged between the journals has
// an identical cached table, so only its fallback-class plans re-run; a
// changed fingerprint means the edit reached that section's code or
// boundary states and the whole stratum is re-injected.
func composeDiff(out io.Writer, stA, stB *fi.JournalState) {
	header := false
	for _, key := range stB.Keys() {
		ca, cb := stA.Cell(key), stB.Cell(key)
		if ca == nil || cb == nil || ca.Result == nil || cb.Result == nil {
			continue
		}
		compA, compB := ca.Result.Composed, cb.Result.Composed
		if !compA.Enabled || !compB.Enabled {
			continue
		}
		if !header {
			fmt.Fprintln(out, "\ncompose sections (= reused: fingerprint unchanged, cached table still valid; # re-injected):")
			header = true
		}
		if len(compA.Rows) != len(compB.Rows) {
			fmt.Fprintf(out, "  %s: section partition changed (%d → %d sections); nothing reusable\n",
				key, len(compA.Rows), len(compB.Rows))
			continue
		}
		strip := make([]byte, len(compB.Rows))
		reused, reusedPlans := 0, 0
		for i, rb := range compB.Rows {
			ra := compA.Rows[i]
			switch {
			case ra.Start != rb.Start || ra.End != rb.End:
				strip[i] = '#'
			case ra.Fingerprint == rb.Fingerprint:
				strip[i] = '='
				reused++
				reusedPlans += rb.Plans - rb.Fallbacks
			default:
				strip[i] = '#'
			}
		}
		fmt.Fprintf(out, "  %s: %d/%d sections reused (%d plans servable from a's tables) [%s]\n",
			key, reused, len(compB.Rows), reusedPlans, strip)
	}
}
