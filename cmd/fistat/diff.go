package main

import (
	"fmt"
	"io"
	"sort"

	"ferrum/internal/fi"
)

// runDiff compares two campaign journals cell by cell: outcome shifts,
// SDC-rate deltas, and detected-latency movement. The intended use is
// before/after comparison across a technique or engine change — same
// benchmarks, same seed, did detection get better or faster?
func runDiff(out io.Writer, pathA, pathB string) error {
	stA, err := fi.LoadJournal(pathA)
	if err != nil {
		return fmt.Errorf("%s: %w", pathA, err)
	}
	stB, err := fi.LoadJournal(pathB)
	if err != nil {
		return fmt.Errorf("%s: %w", pathB, err)
	}
	fmt.Fprintf(out, "diff: a=%s b=%s\n", pathA, pathB)
	if stA.Meta.Seed != stB.Meta.Seed || stA.Meta.Samples != stB.Meta.Samples {
		fmt.Fprintf(out, "note: configs differ (a: seed=%d samples=%d, b: seed=%d samples=%d) — deltas compare different plan sets\n",
			stA.Meta.Seed, stA.Meta.Samples, stB.Meta.Seed, stB.Meta.Samples)
	}
	fmt.Fprintln(out)

	aggA := byKey(aggregate(stA))
	aggB := byKey(aggregate(stB))
	keys := map[string]bool{}
	for k := range aggA {
		keys[k] = true
	}
	for k := range aggB {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	t := newTable("campaign", "plans", "sdc", "detected", "crash", "hang", "Δsdc-rate", "Δp50-detect")
	for _, k := range sorted {
		a, b := aggA[k], aggB[k]
		switch {
		case a == nil:
			t.add(k, "(b only)", "", "", "", "", "", "")
			continue
		case b == nil:
			t.add(k, "(a only)", "", "", "", "", "", "")
			continue
		}
		t.add(k,
			shift(a.samples, b.samples),
			shift(a.counts[fi.SDC], b.counts[fi.SDC]),
			shift(a.counts[fi.Detected], b.counts[fi.Detected]),
			shift(a.counts[fi.Crash], b.counts[fi.Crash]),
			shift(a.counts[fi.Hang], b.counts[fi.Hang]),
			fmt.Sprintf("%+.3f", rate(b)-rate(a)),
			latShift(a, b))
	}
	fmt.Fprint(out, t.String())
	composeDiff(out, stA, stB)
	return nil
}

func byKey(aggs []*cellAgg) map[string]*cellAgg {
	m := make(map[string]*cellAgg, len(aggs))
	for _, a := range aggs {
		m[a.key] = a
	}
	return m
}

func shift(a, b int) string {
	if a == b {
		return fmt.Sprintf("%d", a)
	}
	return fmt.Sprintf("%d→%d", a, b)
}

func rate(a *cellAgg) float64 {
	if a.samples == 0 {
		return 0
	}
	return float64(a.counts[fi.SDC]) / float64(a.samples)
}

// latShift reports the movement of the detected-outcome median latency.
func latShift(a, b *cellAgg) string {
	ha, hb := a.lat.Hist(fi.Detected), b.lat.Hist(fi.Detected)
	switch {
	case ha.N == 0 && hb.N == 0:
		return "-"
	case ha.N == 0 || hb.N == 0:
		return fmt.Sprintf("n %d→%d", ha.N, hb.N)
	}
	pa, pb := ha.Quantile(0.5), hb.Quantile(0.5)
	if pa == pb {
		return fmt.Sprintf("%.0f", pa)
	}
	return fmt.Sprintf("%.0f→%.0f", pa, pb)
}
