// Command fistat is the campaign-journal analytics tool: it replays a
// crash-safe NDJSON journal written by reprod/fidi -journal (and optionally
// the -events-out span stream) and renders what the campaign actually did —
// per-campaign outcome tables, per-site outcome strips, detection-latency
// histograms per technique, and a span waterfall — without re-running a
// single fault.
//
// Usage:
//
//	fistat -journal run.ndjson                    # outcome + latency report
//	fistat -journal run.ndjson -events ev.ndjson  # adds the span waterfall
//	fistat -journal run.ndjson -reconcile m.txt   # verify a /metrics scrape
//	fistat -diff old.ndjson new.ndjson            # compare two campaigns
//
// -reconcile cross-checks a saved /metrics scrape (Prometheus text from the
// -serve endpoint) against the journal's own totals, count for count: the
// outcome counters and every detection-latency bucket must match exactly,
// or fistat exits non-zero. This is the four-surface reconciliation check —
// stderr summary, NDJSON metrics record, live scrape, and journal replay
// all derive from the same per-cell records.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ferrum/internal/fi"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fistat:", err)
		os.Exit(1)
	}
}

const numOutcomes = 5

var allOutcomes = [numOutcomes]fi.Outcome{fi.Benign, fi.SDC, fi.Detected, fi.Crash, fi.Hang}

func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("fistat", flag.ContinueOnError)
	var (
		journalP  = fs.String("journal", "", "campaign journal (NDJSON) written by reprod/fidi -journal")
		eventsP   = fs.String("events", "", "NDJSON event stream written by -events-out; adds the span waterfall")
		diff      = fs.Bool("diff", false, "compare two journals given as positional arguments: fistat -diff a.ndjson b.ndjson")
		reconcile = fs.String("reconcile", "", "saved /metrics scrape (Prometheus text); verify outcome counters and latency buckets match the journal exactly")
		top       = fs.Int("top", 12, "rows in the hottest-sites table")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff takes exactly two journal paths")
		}
		return runDiff(out, fs.Arg(0), fs.Arg(1))
	}
	if *journalP == "" {
		return fmt.Errorf("-journal is required (or -diff a.ndjson b.ndjson)")
	}
	st, err := fi.LoadJournal(*journalP)
	if err != nil {
		return err
	}
	report(out, *journalP, st, *top)
	if *eventsP != "" {
		if err := waterfall(out, *eventsP); err != nil {
			return err
		}
	}
	if *reconcile != "" {
		return runReconcile(out, st, *reconcile)
	}
	return nil
}

// cellAgg is one campaign cell's journal-derived aggregate. Counts come
// from the cell record when the cell completed (they then include pruned
// and replayed plans); otherwise from the executed plan records alone.
type cellAgg struct {
	key      string
	complete bool
	plans    int // journaled plan records (executed faults)
	counts   [numOutcomes]int
	samples  int
	lat      fi.LatencySummary
	sites    map[uint64][numOutcomes]int
	maxSite  uint64
}

func aggregate(st *fi.JournalState) []*cellAgg {
	var aggs []*cellAgg
	for _, key := range st.Keys() {
		cs := st.Cell(key)
		a := &cellAgg{key: key, plans: len(cs.Plans), sites: map[uint64][numOutcomes]int{}}
		if cs.Result != nil {
			a.complete = true
			a.samples = cs.Result.Samples
			for i := range allOutcomes {
				a.counts[i] = cs.Result.Counts[i]
			}
			a.lat = cs.Result.Latency
		} else {
			// Partial cell: replay the executed plan records. The unit is
			// unknown without the cell record; the per-plan latencies still
			// bucket on the shared geometry.
			a.samples = len(cs.Plans)
			for idx, o := range cs.Plans {
				a.counts[o]++
				if lat, ok := cs.PlanLats[idx]; ok {
					a.lat.Observe(o, lat)
				}
			}
		}
		for idx, site := range cs.PlanSites {
			o := cs.Plans[idx]
			row := a.sites[site]
			row[o]++
			a.sites[site] = row
			if site > a.maxSite {
				a.maxSite = site
			}
		}
		aggs = append(aggs, a)
	}
	return aggs
}

// technique extracts the grouping segment from a journal key: the first
// path segment matching a known technique name, else the whole key. reprod
// keys look like "fig10/bfs/ferrum", fidi keys like "bfs/ferrum/asm".
func technique(key string) string {
	for _, seg := range strings.Split(key, "/") {
		switch seg {
		case "raw", "ir-level-eddi", "hybrid-assembly-level-eddi", "ferrum":
			return seg
		}
	}
	return key
}

func report(out io.Writer, path string, st *fi.JournalState, top int) {
	complete, partial := st.Cells()
	fmt.Fprintf(out, "journal: %s\n", path)
	m := st.Meta
	fmt.Fprintf(out, "meta: tool=%s", m.Tool)
	if m.Exp != "" {
		fmt.Fprintf(out, " exp=%s", m.Exp)
	}
	if m.Technique != "" {
		fmt.Fprintf(out, " technique=%s level=%s", m.Technique, m.Level)
	}
	fmt.Fprintf(out, " seed=%d samples=%d\n", m.Seed, m.Samples)
	fmt.Fprintf(out, "cells: %d complete, %d partial\n\n", complete, partial)

	aggs := aggregate(st)

	// Per-campaign outcome table.
	tw := newTable("campaign", "state", "plans", "benign", "sdc", "detected", "crash", "hang", "sdc-rate")
	var totals [numOutcomes]int
	totalPlans := 0
	for _, a := range aggs {
		state := "partial"
		if a.complete {
			state = "complete"
		}
		totalPlans += a.samples
		row := []string{a.key, state, fmt.Sprintf("%d", a.samples)}
		for i := range allOutcomes {
			totals[i] += a.counts[i]
			row = append(row, fmt.Sprintf("%d", a.counts[i]))
		}
		rate := 0.0
		if a.samples > 0 {
			rate = float64(a.counts[fi.SDC]) / float64(a.samples)
		}
		row = append(row, fmt.Sprintf("%.3f", rate))
		tw.add(row...)
	}
	fmt.Fprint(out, tw.String())
	var parts []string
	for i, o := range allOutcomes {
		if totals[i] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", totals[i], o))
		}
	}
	fmt.Fprintf(out, "\noutcomes: %d plans across %d campaigns: %s\n\n",
		totalPlans, len(aggs), strings.Join(parts, ", "))

	composeReport(out, st)

	// Detection-latency histograms, merged per technique (and unit).
	type techLat struct {
		tech string
		lat  fi.LatencySummary
	}
	byTech := map[string]*techLat{}
	var techs []string
	for _, a := range aggs {
		if a.lat.N() == 0 {
			continue
		}
		k := technique(a.key) + "|" + a.lat.Unit
		tl := byTech[k]
		if tl == nil {
			tl = &techLat{tech: technique(a.key)}
			byTech[k] = tl
			techs = append(techs, k)
		}
		tl.lat.Merge(a.lat)
	}
	sort.Strings(techs)
	if len(techs) > 0 {
		fmt.Fprintf(out, "detection latency by technique (executed faults; p-quantiles are bucket upper bounds):\n")
		lt := newTable("technique", "unit", "outcome", "n", "mean", "p50<=", "p90<=", "p99<=", "max")
		for _, k := range techs {
			tl := byTech[k]
			unit := tl.lat.Unit
			if unit == "" {
				unit = "?"
			}
			name := tl.tech
			for _, o := range allOutcomes {
				h := tl.lat.Hist(o)
				if h.N == 0 {
					continue
				}
				lt.add(name, unit, o.String(), fmt.Sprintf("%d", h.N),
					fmt.Sprintf("%.0f", h.Mean()), fmt.Sprintf("%.0f", h.Quantile(0.5)),
					fmt.Sprintf("%.0f", h.Quantile(0.9)), fmt.Sprintf("%.0f", h.Quantile(0.99)),
					fmt.Sprintf("%.0f", h.Max))
				name, unit = "", ""
			}
		}
		fmt.Fprint(out, lt.String())
		fmt.Fprintln(out)
	}

	// Per-site outcome strip: execution position (dynamic site index,
	// normalised 0→100%) binned into 40 columns, each showing the dominant
	// non-benign outcome of the faults injected there.
	strips := false
	for _, a := range aggs {
		if len(a.sites) > 0 {
			strips = true
			break
		}
	}
	if strips {
		const bins = 40
		fmt.Fprintf(out, "per-site outcomes (execution position 0→100%%; S=sdc D=detected C=crash H=hang .=benign):\n")
		width := 0
		for _, a := range aggs {
			if len(a.key) > width {
				width = len(a.key)
			}
		}
		for _, a := range aggs {
			if len(a.sites) == 0 {
				continue
			}
			var grid [bins][numOutcomes]int
			for site, row := range a.sites {
				b := 0
				if a.maxSite > 0 {
					b = int(uint64(bins-1) * site / a.maxSite)
				}
				for i, n := range row {
					grid[b][i] += n
				}
			}
			strip := make([]byte, bins)
			for b := range grid {
				strip[b] = dominant(grid[b])
			}
			fmt.Fprintf(out, "  %-*s [%s]\n", width, a.key, strip)
		}
		fmt.Fprintln(out)

		// Hottest sites: the dynamic sites whose faults most often escaped
		// benign, with their mean detection latency where measured.
		type hot struct {
			key      string
			site     uint64
			row      [numOutcomes]int
			nonBen   int
			latSum   float64
			latCount int
		}
		var hots []hot
		for _, a := range aggs {
			cs := st.Cell(a.key)
			perSiteLat := map[uint64][2]float64{} // site -> {sum, n}
			for idx, lat := range cs.PlanLats {
				if site, ok := cs.PlanSites[idx]; ok {
					v := perSiteLat[site]
					perSiteLat[site] = [2]float64{v[0] + lat, v[1] + 1}
				}
			}
			for site, row := range a.sites {
				nb := 0
				for i, n := range row {
					if allOutcomes[i] != fi.Benign {
						nb += n
					}
				}
				if nb == 0 {
					continue
				}
				v := perSiteLat[site]
				hots = append(hots, hot{a.key, site, row, nb, v[0], int(v[1])})
			}
		}
		sort.Slice(hots, func(i, j int) bool {
			if hots[i].nonBen != hots[j].nonBen {
				return hots[i].nonBen > hots[j].nonBen
			}
			if hots[i].key != hots[j].key {
				return hots[i].key < hots[j].key
			}
			return hots[i].site < hots[j].site
		})
		if len(hots) > top {
			hots = hots[:top]
		}
		if len(hots) > 0 {
			fmt.Fprintf(out, "hottest sites (top %d by non-benign faults):\n", len(hots))
			ht := newTable("campaign", "site", "sdc", "detected", "crash", "hang", "mean-latency")
			for _, h := range hots {
				lat := "-"
				if h.latCount > 0 {
					lat = fmt.Sprintf("%.0f", h.latSum/float64(h.latCount))
				}
				ht.add(h.key, fmt.Sprintf("%d", h.site),
					fmt.Sprintf("%d", h.row[fi.SDC]), fmt.Sprintf("%d", h.row[fi.Detected]),
					fmt.Sprintf("%d", h.row[fi.Crash]), fmt.Sprintf("%d", h.row[fi.Hang]), lat)
			}
			fmt.Fprint(out, ht.String())
			fmt.Fprintln(out)
		}
	}
}

func dominant(row [numOutcomes]int) byte {
	total := 0
	for _, n := range row {
		total += n
	}
	if total == 0 {
		return ' '
	}
	best, bestN := fi.Benign, 0
	for i, n := range row {
		o := allOutcomes[i]
		if o == fi.Benign {
			continue
		}
		if n > bestN {
			best, bestN = o, n
		}
	}
	switch best {
	case fi.SDC:
		return 'S'
	case fi.Detected:
		return 'D'
	case fi.Crash:
		return 'C'
	case fi.Hang:
		return 'H'
	}
	return '.'
}
