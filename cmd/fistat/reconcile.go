package main

import (
	"fmt"
	"io"
	"math"
	"os"

	"ferrum/internal/fi"
	"ferrum/internal/obs"
)

// runReconcile cross-checks a saved /metrics scrape against the journal's
// own totals. Both derive from the same per-cell records — the campaign
// published its counters from the identical Result the cell record froze —
// so every comparison must hold exactly: outcome counters count for count,
// latency histograms bucket for bucket. Any difference means a surface
// drifted and is a hard error.
func runReconcile(out io.Writer, st *fi.JournalState, metricsPath string) error {
	f, err := os.Open(metricsPath)
	if err != nil {
		return err
	}
	scrape, perr := obs.ParsePrometheus(f)
	f.Close()
	if perr != nil {
		return fmt.Errorf("reconcile: %s: %w", metricsPath, perr)
	}

	complete, partial := st.Cells()
	if partial > 0 {
		return fmt.Errorf("reconcile: journal has %d partial cells; a mid-run scrape cannot reconcile — finish the run first", partial)
	}

	// Journal-side totals: sum of every complete cell's frozen Result.
	var plans int64
	var outcomes [numOutcomes]int64
	latByUnit := map[string]*fi.LatencySummary{}
	for _, key := range st.Keys() {
		res := st.Cell(key).Result
		plans += int64(res.Samples)
		for i := range allOutcomes {
			outcomes[i] += int64(res.Counts[i])
		}
		if res.Latency.N() > 0 {
			ls := latByUnit[res.Latency.Unit]
			if ls == nil {
				ls = &fi.LatencySummary{}
				latByUnit[res.Latency.Unit] = ls
			}
			ls.Merge(res.Latency)
		}
	}

	mismatches := 0
	check := func(metric string, got, want int64) {
		if got != want {
			mismatches++
			fmt.Fprintf(out, "reconcile: %s = %d in scrape, %d in journal\n", metric, got, want)
		}
	}
	check("fi_campaigns", scrape.Counters["fi_campaigns"], int64(complete))
	check("fi_plans", scrape.Counters["fi_plans"], plans)
	for i, o := range allOutcomes {
		check("fi_outcome_"+o.String(), scrape.Counters["fi_outcome_"+o.String()], outcomes[i])
	}

	// Journal record accounting must be exact for a fresh uninterrupted run:
	// one meta record, one plan record per executed plan, one cell record per
	// campaign. Anything above that means discarded work leaked into the
	// journal (the post-stop journaling bug this check pins down). The
	// identity only holds when nothing was replayed (resume journals no new
	// records for skipped work), nothing early-stopped (plans beyond the
	// truncation point may have been journaled before the stop decision), and
	// no cell was retried (duplicate records resolve on load but still count).
	if recs, ok := scrape.Counters["journal_records"]; ok &&
		scrape.Counters["journal_skipped_plans"] == 0 &&
		scrape.Counters["journal_skipped_cells"] == 0 &&
		scrape.Counters["fi_early_stops"] == 0 &&
		scrape.Counters["sched_retries"] == 0 {
		check("journal_records", recs, 1+plans+int64(complete))
	}

	latHists := 0
	for unit, ls := range latByUnit {
		for _, o := range allOutcomes {
			h := ls.Hist(o)
			name := obs.SanitizeMetricName(obs.MDetectLatencyPrefix + unit + "." + o.String())
			sh, ok := scrape.Hists[name]
			if h.N == 0 {
				if ok && sh.Count != 0 {
					mismatches++
					fmt.Fprintf(out, "reconcile: %s has %d samples in scrape, none in journal\n", name, sh.Count)
				}
				continue
			}
			latHists++
			if !ok {
				mismatches++
				fmt.Fprintf(out, "reconcile: %s missing from scrape (journal has %d samples)\n", name, h.N)
				continue
			}
			check(name+"_count", sh.Count, h.N)
			if len(sh.Counts) != len(h.Counts) {
				mismatches++
				fmt.Fprintf(out, "reconcile: %s has %d buckets in scrape, %d in journal\n", name, len(sh.Counts), len(h.Counts))
				continue
			}
			for b := range h.Counts {
				if sh.Counts[b] != h.Counts[b] {
					mismatches++
					le := "+Inf"
					if b < len(fi.LatencyBuckets) {
						le = fmt.Sprintf("%g", fi.LatencyBuckets[b])
					}
					fmt.Fprintf(out, "reconcile: %s bucket le=%s = %d in scrape, %d in journal\n",
						name, le, sh.Counts[b], h.Counts[b])
				}
			}
			// Sums accumulate float64 in different orders on the two
			// surfaces; require agreement to relative 1e-9, not bit equality.
			if diff := math.Abs(sh.Sum - h.Sum); diff > 1e-9*math.Max(1, math.Abs(h.Sum)) {
				mismatches++
				fmt.Fprintf(out, "reconcile: %s_sum = %g in scrape, %g in journal\n", name, sh.Sum, h.Sum)
			}
		}
	}

	if mismatches > 0 {
		return fmt.Errorf("reconcile: %d mismatches between %s and the journal", mismatches, metricsPath)
	}
	fmt.Fprintf(out, "reconcile: OK — %d campaigns, %d plans, %d latency histograms match the scrape exactly\n",
		complete, plans, latHists)
	return nil
}
