// Benchmark harness: one benchmark per table/figure of the paper. Each
// reports the paper's metric as a custom unit so `go test -bench=.`
// regenerates the evaluation's rows:
//
//	BenchmarkFig10SDCCoverage   coverage%/<technique> per Rodinia kernel
//	BenchmarkFig11Overhead      overhead%/<technique> per Rodinia kernel
//	BenchmarkExecTime           FERRUM transform time (ns/op) + insts
//	BenchmarkCrossLayerGap      anticipated/measured coverage gap
//	BenchmarkTable2Build        compile cost + static instruction counts
//	BenchmarkAblation*          design-choice ablations from DESIGN.md
package ferrum

import (
	"fmt"
	"testing"

	"ferrum/internal/backend"
	"ferrum/internal/compose"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/fi"
	"ferrum/internal/harness"
	"ferrum/internal/ir"
	"ferrum/internal/irpass"
	"ferrum/internal/machine"
	"ferrum/internal/obs"
	"ferrum/internal/rodinia"
)

// benchSamples keeps `go test -bench=.` runs affordable; cmd/reprod runs
// the paper-scale 1000-sample campaigns.
const benchSamples = 250

func benchOpts(names ...string) harness.Options {
	return harness.Options{Samples: benchSamples, Seed: harness.DefaultSeed, Benchmarks: names}
}

// BenchmarkFig10SDCCoverage regenerates fig. 10 one benchmark at a time,
// reporting SDC coverage per technique as custom metrics.
func BenchmarkFig10SDCCoverage(b *testing.B) {
	for _, bench := range rodinia.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			var rows []harness.Fig10Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = harness.Fig10(benchOpts(bench.Name))
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(r.RawSDCRate*100, "rawSDC%")
			b.ReportMetric(r.Coverage[harness.IREDDI]*100, "cov-ireddi%")
			b.ReportMetric(r.Coverage[harness.Hybrid]*100, "cov-hybrid%")
			b.ReportMetric(r.Coverage[harness.Ferrum]*100, "cov-ferrum%")
		})
	}
}

// BenchmarkFig11Overhead regenerates fig. 11, reporting runtime overhead
// per technique.
func BenchmarkFig11Overhead(b *testing.B) {
	for _, bench := range rodinia.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			var rows []harness.Fig11Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = harness.Fig11(benchOpts(bench.Name))
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(r.Overhead[harness.IREDDI]*100, "ov-ireddi%")
			b.ReportMetric(r.Overhead[harness.Hybrid]*100, "ov-hybrid%")
			b.ReportMetric(r.Overhead[harness.Ferrum]*100, "ov-ferrum%")
		})
	}
}

// BenchmarkExecTime measures the FERRUM transform itself (§IV-B3): ns/op is
// the paper's "time to execute FERRUM" for each benchmark.
func BenchmarkExecTime(b *testing.B) {
	for _, bench := range rodinia.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			inst, err := bench.Instantiate(1, 1)
			if err != nil {
				b.Fatal(err)
			}
			prog, err := backend.Compile(inst.Mod)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var rep *ferrumpass.Report
			for i := 0; i < b.N; i++ {
				_, rep, err = ferrumpass.Protect(prog, ferrumpass.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.StaticInsts), "static-insts")
		})
	}
}

// BenchmarkCrossLayerGap regenerates the anticipated-vs-measured coverage
// gap for IR-LEVEL-EDDI.
func BenchmarkCrossLayerGap(b *testing.B) {
	for _, name := range []string{"bfs", "knn", "needle", "kmeans"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var rows []harness.GapRow
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = harness.Gap(benchOpts(name))
				if err != nil {
					b.Fatal(err)
				}
			}
			r := rows[0]
			b.ReportMetric(r.Anticipated*100, "anticipated%")
			b.ReportMetric(r.Measured*100, "measured%")
			b.ReportMetric(r.Gap*100, "gap%")
		})
	}
}

// BenchmarkTable2Build measures compilation and reports the static
// instruction counts of Table II.
func BenchmarkTable2Build(b *testing.B) {
	for _, bench := range rodinia.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			inst, err := bench.Instantiate(1, 1)
			if err != nil {
				b.Fatal(err)
			}
			var n int
			for i := 0; i < b.N; i++ {
				prog, err := backend.Compile(inst.Mod)
				if err != nil {
					b.Fatal(err)
				}
				n = prog.StaticInstCount()
			}
			b.ReportMetric(float64(n), "asm-insts")
			b.ReportMetric(float64(inst.Mod.InstCount()), "ir-insts")
		})
	}
}

// BenchmarkTable1Matrix renders the capability matrix (static, but keeps a
// bench target per table as DESIGN.md promises).
func BenchmarkTable1Matrix(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = harness.RenderTable1()
	}
	if len(s) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkAblationBatchSize sweeps FERRUM's SIMD batch size, the design
// choice behind fig. 6 (4 results per YMM comparison).
func BenchmarkAblationBatchSize(b *testing.B) {
	inst, err := rodinia.Pathfinder.Instantiate(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	raw := goldenCycles(b, prog, inst)
	for _, batch := range []int{1, 2, 3, 4} {
		batch := batch
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			var prot = prog
			for i := 0; i < b.N; i++ {
				p, _, err := ferrumpass.Protect(prog, ferrumpass.Config{BatchSize: batch})
				if err != nil {
					b.Fatal(err)
				}
				prot = p
			}
			b.ReportMetric(fi.Overhead(raw, goldenCycles(b, prot, inst))*100, "overhead%")
		})
	}
}

// BenchmarkAblationNoSIMD compares FERRUM with its SIMD path disabled —
// the gap between fig. 4-only protection and the full design.
func BenchmarkAblationNoSIMD(b *testing.B) {
	inst, err := rodinia.Kmeans.Instantiate(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	raw := goldenCycles(b, prog, inst)
	for _, cfg := range []struct {
		name string
		c    ferrumpass.Config
	}{
		{"simd", ferrumpass.Config{}},
		{"nosimd", ferrumpass.Config{DisableSIMD: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var prot = prog
			for i := 0; i < b.N; i++ {
				p, _, err := ferrumpass.Protect(prog, cfg.c)
				if err != nil {
					b.Fatal(err)
				}
				prot = p
			}
			b.ReportMetric(fi.Overhead(raw, goldenCycles(b, prot, inst))*100, "overhead%")
		})
	}
}

// BenchmarkMachineExecution measures the simulator's raw interpretation
// speed on the largest benchmark.
func BenchmarkMachineExecution(b *testing.B) {
	inst, err := rodinia.Particlefilter.Instantiate(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(prog, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.Setup(m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var dyn uint64
	for i := 0; i < b.N; i++ {
		res := m.Run(machine.RunOpts{Args: inst.Args})
		if res.Outcome != machine.OutcomeOK {
			b.Fatal(res.Outcome)
		}
		dyn = res.DynInsts
	}
	b.ReportMetric(float64(dyn), "dyn-insts")
}

// BenchmarkMachineRun measures one uninstrumented asm-machine execution per
// iteration — the inner-loop cost every campaign and experiment pays per
// plan. BENCH_interp.json snapshots ns/op before and after the pre-decoded
// execution engine.
func BenchmarkMachineRun(b *testing.B) {
	for _, v := range []struct {
		bench   *rodinia.Benchmark
		protect bool
		name    string
	}{
		{rodinia.BFS, false, "bfs/raw"},
		{rodinia.BFS, true, "bfs/ferrum"},
		{rodinia.Particlefilter, false, "particlefilter/raw"},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			inst, err := v.bench.Instantiate(1, harness.DefaultSeed)
			if err != nil {
				b.Fatal(err)
			}
			prog, err := backend.Compile(inst.Mod)
			if err != nil {
				b.Fatal(err)
			}
			if v.protect {
				prog, _, err = ferrumpass.Protect(prog, ferrumpass.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			m, err := machine.New(prog, 1<<20)
			if err != nil {
				b.Fatal(err)
			}
			if err := inst.Setup(m); err != nil {
				b.Fatal(err)
			}
			// Profile-guided pair fusion, exactly as campaigns apply it
			// from their golden run.
			prof := m.Run(machine.RunOpts{Args: inst.Args, Profile: true})
			if prof.Outcome != machine.OutcomeOK {
				b.Fatalf("%v (%s)", prof.Outcome, prof.CrashMsg)
			}
			m.FuseProfile(prof.Profile)
			b.ResetTimer()
			var dyn uint64
			for i := 0; i < b.N; i++ {
				res := m.Run(machine.RunOpts{Args: inst.Args})
				if res.Outcome != machine.OutcomeOK {
					b.Fatalf("%v (%s)", res.Outcome, res.CrashMsg)
				}
				dyn = res.DynInsts
			}
			b.ReportMetric(float64(dyn), "dyn-insts")
			b.ReportMetric(float64(dyn)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minsts/s")
		})
	}
}

// BenchmarkIRRun is the IR-interpreter counterpart of BenchmarkMachineRun:
// one interpreted execution per iteration, raw and EDDI-protected.
func BenchmarkIRRun(b *testing.B) {
	for _, v := range []struct {
		bench   *rodinia.Benchmark
		protect bool
		name    string
	}{
		{rodinia.BFS, false, "bfs/raw"},
		{rodinia.BFS, true, "bfs/eddi"},
		{rodinia.Particlefilter, false, "particlefilter/raw"},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			inst, err := v.bench.Instantiate(1, harness.DefaultSeed)
			if err != nil {
				b.Fatal(err)
			}
			mod := inst.Mod
			if v.protect {
				mod, err = irpass.EDDI(mod)
				if err != nil {
					b.Fatal(err)
				}
			}
			ip, err := ir.NewInterp(mod, 1<<20)
			if err != nil {
				b.Fatal(err)
			}
			if err := inst.Setup(ip); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var steps uint64
			for i := 0; i < b.N; i++ {
				res := ip.Run(ir.RunOpts{Args: inst.Args})
				if res.Outcome != ir.OutcomeOK {
					b.Fatalf("%v (%s)", res.Outcome, res.CrashMsg)
				}
				steps = res.Steps
			}
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(float64(steps)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msteps/s")
		})
	}
}

// BenchmarkCampaignThroughput measures fault-injection throughput, the
// quantity that bounds full fig. 10 reproduction time.
func BenchmarkCampaignThroughput(b *testing.B) {
	inst, err := rodinia.BFS.Instantiate(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	tgt := fi.AsmTarget{
		Prog:    prog,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fi.RunAsmCampaign(tgt, fi.Campaign{Samples: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsmCampaign compares the direct, checkpointed and pruned
// campaign paths on the FERRUM-protected cell (the suite's dominant cost:
// protected runs detect soon after injection, so fast-forwarding skips most
// of each run; pruning answers provably-Benign plans without executing and
// dedups value-identical ones). plans/s counts planned samples, so the
// pruned mode's rate includes statically-answered plans; the executed
// metric shows how many plans actually ran. BENCH_campaign.json snapshots
// both.
func BenchmarkAsmCampaign(b *testing.B) {
	inst, err := rodinia.BFS.Instantiate(1, harness.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	prot, _, err := ferrumpass.Protect(prog, ferrumpass.Config{})
	if err != nil {
		b.Fatal(err)
	}
	tgt := fi.AsmTarget{
		Prog:    prot,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
	for _, mode := range []struct {
		name string
		c    fi.Campaign
	}{
		{"direct", fi.Campaign{Samples: benchSamples, Seed: harness.DefaultSeed, NoCheckpoint: true}},
		{"checkpointed", fi.Campaign{Samples: benchSamples, Seed: harness.DefaultSeed}},
		{"pruned", fi.Campaign{Samples: benchSamples, Seed: harness.DefaultSeed, Prune: fi.PruneFull}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var res fi.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = fi.RunAsmCampaign(tgt, mode.c)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(benchSamples)*float64(b.N)/b.Elapsed().Seconds(), "plans/s")
			if cp := res.Checkpoint; cp.Enabled {
				b.ReportMetric(float64(cp.Interval), "K")
				b.ReportMetric(float64(cp.SkippedInsts), "skipped-insts")
			}
			if pr := res.Pruned; pr.Enabled {
				b.ReportMetric(float64(pr.Executed), "executed")
			}
		})
	}
}

// composeSamples is BenchmarkCompose's per-campaign budget. The reuse side's
// cost is sample-independent (golden + recording runs only), so the paper-
// scale budget is what makes the headline ratio honest.
const composeSamples = 1000

// BenchmarkCompose measures the compositional campaign's section-reuse
// speedup, the headline number of BENCH_compose.json: 'full' runs the
// composed campaign cold (fresh section cache every iteration — golden run,
// recording run, and every plan executed), 'reuse' runs the identical
// campaign against warm tables (every plan served from cache; only the
// golden and recording runs execute). The ratio is the wall-clock saving a
// re-run pays after an edit that reaches no section. The cell is the raw
// (unprotected) bfs campaign — the fault-space measurement a protection
// developer re-runs most, and the one whose plans run longest (no detector
// truncates them), so it is also where composition pays most.
func BenchmarkCompose(b *testing.B) {
	inst, err := rodinia.BFS.Instantiate(1, harness.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	tgt := fi.AsmTarget{
		Prog:    prog,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
	base := fi.Campaign{Samples: composeSamples, Seed: harness.DefaultSeed, Compose: fi.ComposeOn}

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := base
			c.SectionCache = compose.NewCache() // cold: every plan executes
			if _, err := fi.RunAsmCampaign(tgt, c); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(composeSamples)*float64(b.N)/b.Elapsed().Seconds(), "plans/s")
	})
	b.Run("reuse", func(b *testing.B) {
		warm := compose.NewCache()
		c := base
		c.SectionCache = warm
		if _, err := fi.RunAsmCampaign(tgt, c); err != nil {
			b.Fatal(err) // populate the tables outside the timer
		}
		b.ResetTimer()
		var res fi.Result
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c := base
			c.SectionCache = warm.Clone() // shared tables, fresh counters
			b.StartTimer()
			var err error
			res, err = fi.RunAsmCampaign(tgt, c)
			if err != nil {
				b.Fatal(err)
			}
		}
		if res.Checkpoint.Restores != 0 || res.Checkpoint.ColdStarts != 0 {
			b.Fatalf("warm run executed plans: %+v", res.Checkpoint)
		}
		b.ReportMetric(float64(composeSamples)*float64(b.N)/b.Elapsed().Seconds(), "plans/s")
	})
}

// BenchmarkObsOverhead proves the observability layer is off-path: the same
// checkpointed FERRUM campaign with instrumentation disabled (nil Obs — the
// default), and with a live observer collecting spans and counters. The two
// must stay within a few percent: spans wrap campaign phases, never the
// per-plan inner loop. BENCH_obs.json snapshots the disabled mode against
// BENCH_campaign.json's checkpointed baseline.
func BenchmarkObsOverhead(b *testing.B) {
	inst, err := rodinia.BFS.Instantiate(1, harness.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	prot, _, err := ferrumpass.Protect(prog, ferrumpass.Config{})
	if err != nil {
		b.Fatal(err)
	}
	tgt := fi.AsmTarget{
		Prog:    prot,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
	for _, mode := range []struct {
		name string
		cx   func() *obs.Ctx
	}{
		{"disabled", func() *obs.Ctx { return nil }},
		{"enabled", func() *obs.Ctx { return obs.New().Cell("bfs/ferrum", 1) }},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := fi.Campaign{Samples: benchSamples, Seed: harness.DefaultSeed, Obs: mode.cx()}
				if _, err := fi.RunAsmCampaign(tgt, c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(benchSamples)*float64(b.N)/b.Elapsed().Seconds(), "plans/s")
		})
	}
}

// BenchmarkIRCampaign is the IR-level counterpart of BenchmarkAsmCampaign
// (EDDI-protected module, the gap experiment's expensive half).
func BenchmarkIRCampaign(b *testing.B) {
	inst, err := rodinia.BFS.Instantiate(1, harness.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := irpass.EDDI(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	tgt := fi.IRTarget{
		Mod:     mod,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
	for _, mode := range []struct {
		name string
		c    fi.Campaign
	}{
		{"direct", fi.Campaign{Samples: benchSamples, Seed: harness.DefaultSeed, NoCheckpoint: true}},
		{"checkpointed", fi.Campaign{Samples: benchSamples, Seed: harness.DefaultSeed}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var res fi.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = fi.RunIRCampaign(tgt, mode.c)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(benchSamples)*float64(b.N)/b.Elapsed().Seconds(), "plans/s")
			if cp := res.Checkpoint; cp.Enabled {
				b.ReportMetric(float64(cp.Interval), "K")
				b.ReportMetric(float64(cp.SkippedInsts), "skipped-insts")
			}
		})
	}
}

func goldenCycles(b *testing.B, prog *ferrumProg, inst *rodinia.Instance) float64 {
	b.Helper()
	m, err := machine.New(prog, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.Setup(m); err != nil {
		b.Fatal(err)
	}
	res := m.Run(machine.RunOpts{Args: inst.Args})
	if res.Outcome != machine.OutcomeOK {
		b.Fatalf("golden run: %v (%s)", res.Outcome, res.CrashMsg)
	}
	return res.Cycles
}

// ferrumProg aliases the assembly program type for the helper signature.
type ferrumProg = Program

// BenchmarkExtensionZMM compares YMM (paper) with ZMM (AVX-512) batching —
// the §III-B3 extension. ZMM halves the number of check branches but only
// pays off when basic blocks are long enough to fill 8-result batches.
func BenchmarkExtensionZMM(b *testing.B) {
	inst, err := rodinia.Pathfinder.Instantiate(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	raw := goldenCycles(b, prog, inst)
	for _, cfg := range []struct {
		name string
		c    ferrumpass.Config
	}{
		{"ymm", ferrumpass.Config{}},
		{"zmm", ferrumpass.Config{UseZMM: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var prot = prog
			var rep *ferrumpass.Report
			for i := 0; i < b.N; i++ {
				p, r, err := ferrumpass.Protect(prog, cfg.c)
				if err != nil {
					b.Fatal(err)
				}
				prot, rep = p, r
			}
			b.ReportMetric(fi.Overhead(raw, goldenCycles(b, prot, inst))*100, "overhead%")
			b.ReportMetric(float64(rep.Batches), "batches")
		})
	}
}

// BenchmarkExtensionSelective sweeps the protection ratio, reporting the
// coverage/overhead tradeoff curve of SDCTune-style selective protection.
func BenchmarkExtensionSelective(b *testing.B) {
	inst, err := rodinia.BFS.Instantiate(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	tgt := func(p *Program) fi.AsmTarget {
		return fi.AsmTarget{
			Prog:    p,
			MemSize: 1 << 20,
			Args:    inst.Args,
			Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
		}
	}
	rawRes, err := fi.RunAsmCampaign(tgt(prog), fi.Campaign{Samples: benchSamples, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, ratio := range []float64{0.25, 0.5, 0.75, 1.0} {
		ratio := ratio
		b.Run(fmt.Sprintf("ratio%.0f", ratio*100), func(b *testing.B) {
			var res fi.Result
			for i := 0; i < b.N; i++ {
				prot, _, err := ferrumpass.Protect(prog, ferrumpass.Config{
					Select: ferrumpass.SelectRatio(ratio, 5),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err = fi.RunAsmCampaign(tgt(prot), fi.Campaign{Samples: benchSamples, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(fi.Coverage(rawRes, res)*100, "coverage%")
			b.ReportMetric(fi.Overhead(rawRes.Cycles, res.Cycles)*100, "overhead%")
		})
	}
}

// BenchmarkExtensionMultiBit injects 1-3 bit upsets into the protected
// binary; coverage must hold at 100% for all of them.
func BenchmarkExtensionMultiBit(b *testing.B) {
	inst, err := rodinia.LUD.Instantiate(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	prot, _, err := ferrumpass.Protect(prog, ferrumpass.Config{})
	if err != nil {
		b.Fatal(err)
	}
	tgt := fi.AsmTarget{
		Prog:    prot,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
	for _, bits := range []int{1, 2, 3} {
		bits := bits
		b.Run(fmt.Sprintf("bits%d", bits), func(b *testing.B) {
			var res fi.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = fi.RunAsmCampaign(tgt, fi.Campaign{
					Samples: benchSamples, Seed: 5, BitsPerFault: bits,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Count(fi.SDC)), "sdc")
			b.ReportMetric(res.Rate(fi.Detected)*100, "detected%")
		})
	}
}

// BenchmarkExtensionGuidedSelective compares SDCTune-style
// proneness-guided selective protection against a uniform random subset at
// the same budget: guided coverage should dominate.
func BenchmarkExtensionGuidedSelective(b *testing.B) {
	inst, err := rodinia.BFS.Instantiate(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Compile(inst.Mod)
	if err != nil {
		b.Fatal(err)
	}
	tgt := fi.AsmTarget{
		Prog:    prog,
		MemSize: 1 << 20,
		Args:    inst.Args,
		Setup:   func(w fi.MemWriter) error { return inst.Setup(w) },
	}
	stats, err := fi.ProfileProneness(tgt, fi.Campaign{Samples: 500, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	rawRes, err := fi.RunAsmCampaign(tgt, fi.Campaign{Samples: benchSamples, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	const fraction = 0.3
	for _, v := range []struct {
		name string
		sel  ferrumpass.Selector
	}{
		{"guided", harness.GuidedSelector(stats, fraction)},
		{"random", ferrumpass.SelectRatio(fraction, 5)},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				prot, _, err := ferrumpass.Protect(prog, ferrumpass.Config{Select: v.sel})
				if err != nil {
					b.Fatal(err)
				}
				res, err := fi.RunAsmCampaign(fi.AsmTarget{
					Prog: prot, MemSize: 1 << 20, Args: inst.Args,
					Setup: func(w fi.MemWriter) error { return inst.Setup(w) },
				}, fi.Campaign{Samples: benchSamples, Seed: 9})
				if err != nil {
					b.Fatal(err)
				}
				cov = fi.Coverage(rawRes, res)
			}
			b.ReportMetric(cov*100, "coverage%")
		})
	}
}

// BenchmarkO1Pipeline reports the evaluation at the optimised build level:
// the cross-layer gap widens when slot traffic is optimised away.
func BenchmarkO1Pipeline(b *testing.B) {
	for _, o1 := range []bool{false, true} {
		o1 := o1
		name := "O0"
		if o1 {
			name = "O1"
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOpts("knn")
			opts.Optimize = o1
			var rows []harness.GapRow
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = harness.Gap(opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].Gap*100, "gap%")
		})
	}
}
