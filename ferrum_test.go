package ferrum

import (
	"strings"
	"testing"

	"ferrum/internal/ir"
)

const irOpMul = ir.OpMul

const quickSrc = `
func @main(%n) {
entry:
  %acc = alloca 1
  %i = alloca 1
  store 0, %acc
  store 1, %i
  br loop
loop:
  %iv = load %i
  %c = icmp sle %iv, %n
  br %c, body, done
body:
  %a = load %acc
  %a2 = add %a, %iv
  store %a2, %acc
  %i2 = add %iv, 1
  store %i2, %i
  br loop
done:
  %r = load %acc
  out %r
  ret %r
}
`

func TestPublicPipelineEndToEnd(t *testing.T) {
	pipe := New()
	prog, err := pipe.CompileIR(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	prot, rep, err := pipe.Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SIMDEnabled == 0 {
		t.Error("no SIMD-enabled instructions reported")
	}
	res, err := pipe.Run(prot, []uint64{100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 5050 {
		t.Fatalf("output = %v", res.Output)
	}

	rawCamp, err := pipe.Campaign(prog, []uint64{100}, nil, Campaign{Samples: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	protCamp, err := pipe.Campaign(prot, []uint64{100}, nil, Campaign{Samples: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := Coverage(rawCamp, protCamp); got != 1 {
		t.Errorf("coverage = %v, want 1", got)
	}
	if oh := Overhead(rawCamp.Cycles, protCamp.Cycles); oh <= 0 {
		t.Errorf("overhead = %v", oh)
	}
}

func TestPublicBenchmarkAccess(t *testing.T) {
	if len(Benchmarks()) != 8 {
		t.Fatalf("benchmarks = %d", len(Benchmarks()))
	}
	b, ok := BenchmarkByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder missing")
	}
	inst, err := b.Instantiate(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pipe := New()
	prog, err := pipe.Compile(inst.Mod)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Verify(inst.Mod, prog, inst.Args, wordMap(inst)); err != nil {
		t.Fatal(err)
	}
}

func wordMap(inst *BenchmarkInstance) map[uint64]uint64 {
	m := map[uint64]uint64{}
	for i, v := range inst.Words {
		m[8192+8*uint64(i)] = v
	}
	return m
}

func TestPublicTables(t *testing.T) {
	if !strings.Contains(RenderTable1(), "ferrum") {
		t.Error("Table I render broken")
	}
	rows, err := Table2(ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("table 2 rows = %d", len(rows))
	}
}

func TestPublicProtectVariants(t *testing.T) {
	pipe := New()
	mod, err := ParseIR(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	ireddi, err := pipe.ProtectModuleIREDDI(mod)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := pipe.ProtectModuleHybrid(mod)
	if err != nil {
		t.Fatal(err)
	}
	fer, _, err := pipe.ProtectModuleFerrum(mod)
	if err != nil {
		t.Fatal(err)
	}
	for name, prog := range map[string]*Program{"ir-eddi": ireddi, "hybrid": hybrid, "ferrum": fer} {
		res, err := pipe.Run(prog, []uint64{10}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Output) != 1 || res.Output[0] != 55 {
			t.Errorf("%s: output = %v", name, res.Output)
		}
	}
}

func TestPublicIRBuilder(t *testing.T) {
	b := NewIRBuilder()
	f := b.Func("main", "n")
	e := f.Entry()
	sq := e.Bin(irOpMul, f.Param("n"), f.Param("n"))
	e.Out(sq)
	e.Ret(sq)
	mod, err := b.Module()
	if err != nil {
		t.Fatal(err)
	}
	pipe := New()
	prog, err := pipe.Compile(mod)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run(prog, []uint64{6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 36 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestPublicGuidedSelection(t *testing.T) {
	pipe := New()
	prog, err := pipe.CompileIR(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ProfileProneness(prog, 1<<20, []uint64{40}, nil, Campaign{Samples: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no stats")
	}
	pipe.Ferrum = Config{Select: GuidedSelector(stats, 0.5)}
	prot, rep, err := pipe.Protect(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SIMDEnabled+rep.General == 0 {
		t.Error("guided selector protected nothing")
	}
	res, err := pipe.Run(prot, []uint64{40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 820 {
		t.Fatalf("output = %v", res.Output)
	}
}
