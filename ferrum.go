// Package ferrum is a from-scratch Go reproduction of "A Fast Low-Level
// Error Detection Technique" (DSN 2024): FERRUM, an assembly-level
// error-detection-by-duplicated-instructions (EDDI) transform boosted with
// SIMD batching, deferred RFLAGS protection and stack-based register
// requisition, together with every substrate the paper depends on — an
// LLVM-like IR, an unoptimising IR-to-x86-64 backend, an x86-64 subset
// machine simulator with a calibrated cycle model, IR- and assembly-level
// fault injectors, the two baseline protections (IR-LEVEL-EDDI and
// HYBRID-ASSEMBLY-LEVEL-EDDI), the eight Rodinia evaluation kernels, and a
// harness that regenerates the paper's tables and figures.
//
// Quick start:
//
//	pipe := ferrum.New()
//	prog, _ := pipe.CompileIR(src)          // IR text -> x86-64 subset
//	prot, rep, _ := pipe.Protect(prog)      // apply FERRUM
//	res, _ := pipe.Run(prot, args, data)    // execute on the machine model
//	camp, _ := pipe.Campaign(prot, args, data, ferrum.Campaign{Samples: 1000})
//
// See the examples directory for complete programs and DESIGN.md for the
// system inventory and experiment index.
package ferrum

import (
	"ferrum/internal/asm"
	"ferrum/internal/core"
	"ferrum/internal/eddi"
	"ferrum/internal/ferrumpass"
	"ferrum/internal/fi"
	"ferrum/internal/harness"
	"ferrum/internal/ir"
	"ferrum/internal/machine"
	"ferrum/internal/rodinia"
)

// Pipeline is the configured toolchain; see New.
type Pipeline = core.Pipeline

// New returns a toolchain with default settings.
func New() *Pipeline { return core.New() }

// Core transformation types.
type (
	// Config tunes the FERRUM pass: SIMD batch size, SIMD ablation, and
	// spare-register overrides for exercising stack requisition.
	Config = ferrumpass.Config
	// Report summarises one FERRUM transform (annotation counts, batches,
	// requisitions, duration).
	Report = ferrumpass.Report
	// HybridReport summarises the hybrid baseline's assembly pass.
	HybridReport = eddi.Report
	// Selector restricts protection to a chosen instruction subset
	// (selective protection, an SDCTune-style extension).
	Selector = ferrumpass.Selector
)

// SelectRatio builds a deterministic Selector protecting roughly the given
// fraction of instructions.
func SelectRatio(ratio float64, seed int64) Selector {
	return ferrumpass.SelectRatio(ratio, seed)
}

// Program representations.
type (
	// Module is a parsed IR compilation unit.
	Module = ir.Module
	// Program is an assembly program in the modelled x86-64 subset.
	Program = asm.Program
	// Machine executes programs and hosts fault injection.
	Machine = machine.Machine
	// MachineResult is one execution's outcome, output and cycle count.
	MachineResult = machine.Result
	// RunOpts configures one machine execution (arguments, step budget,
	// optional fault plan).
	RunOpts = machine.RunOpts
)

// Fault-injection types.
type (
	// Campaign configures a statistical fault-injection campaign.
	Campaign = fi.Campaign
	// CampaignResult aggregates campaign outcomes.
	CampaignResult = fi.Result
	// Fault is a single planned bit flip (dynamic site index + bit).
	Fault = machine.Fault
)

// Campaign outcome classes.
const (
	OutcomeBenign   = fi.Benign
	OutcomeSDC      = fi.SDC
	OutcomeDetected = fi.Detected
	OutcomeCrash    = fi.Crash
	OutcomeHang     = fi.Hang
)

// Coverage computes the paper's SDC-coverage metric from a raw and a
// protected campaign result: (SDC_raw - SDC_prot) / SDC_raw.
func Coverage(raw, prot CampaignResult) float64 { return fi.Coverage(raw, prot) }

// Overhead computes the paper's runtime-overhead metric from golden-run
// cycle counts.
func Overhead(rawCycles, protCycles float64) float64 { return fi.Overhead(rawCycles, protCycles) }

// Experiment harness: techniques and reproduction entry points.
type (
	// Technique identifies a protection scheme from the paper.
	Technique = harness.Technique
	// ExperimentOptions configures a reproduction run.
	ExperimentOptions = harness.Options
	// BuildCache memoises benchmark instances, technique builds and golden
	// runs; share one across experiment calls (ExperimentOptions.Cache) so
	// each (benchmark, technique, optimize) build happens exactly once.
	BuildCache = harness.BuildCache
	// CellEvent is one scheduler cell transition, streamed to
	// ExperimentOptions.Progress.
	CellEvent = harness.CellEvent
	// CacheStats snapshots a BuildCache's hit/miss counters.
	CacheStats = harness.CacheStats
)

// DefaultSeed is the seed the paper-scale reproduction uses; the harness
// honours every seed, including zero.
const DefaultSeed = harness.DefaultSeed

// NewBuildCache returns an empty experiment build cache.
func NewBuildCache() *BuildCache { return harness.NewBuildCache() }

// The paper's techniques.
const (
	Raw    = harness.Raw
	IREDDI = harness.IREDDI
	Hybrid = harness.Hybrid
	Ferrum = harness.Ferrum
)

// Experiment entry points; each returns structured rows, and the matching
// Render function formats them as the paper's table or figure.
var (
	Fig10          = harness.Fig10
	Fig11          = harness.Fig11
	ExecTime       = harness.ExecTime
	CrossLayerGap  = harness.Gap
	Table1         = harness.Table1
	Table2         = harness.Table2
	RenderFig10    = harness.RenderFig10
	RenderFig11    = harness.RenderFig11
	RenderExecTime = harness.RenderExecTime
	RenderGap      = harness.RenderGap
	RenderTable1   = harness.RenderTable1
	RenderTable2   = harness.RenderTable2
)

// Benchmark access (Table II workloads).
type (
	// Benchmark is one Rodinia workload.
	Benchmark = rodinia.Benchmark
	// BenchmarkInstance is a benchmark instantiated with inputs.
	BenchmarkInstance = rodinia.Instance
)

// Benchmark registry accessors.
var (
	Benchmarks      = rodinia.All
	BenchmarkByName = rodinia.ByName
)

// ParseIR parses IR source text into a verified module.
func ParseIR(src string) (*Module, error) { return ir.Parse(src) }

// ParseASM parses assembly source text.
func ParseASM(src string) (*Program, error) { return asm.Parse(src) }

// Programmatic IR construction.
type (
	// IRBuilder constructs modules programmatically; see ir.Builder.
	IRBuilder = ir.Builder
	// FuncBuilder builds one IR function.
	FuncBuilder = ir.FuncBuilder
	// BlockBuilder appends instructions to one IR block.
	BlockBuilder = ir.BlockBuilder
)

// NewIRBuilder returns an empty module builder.
func NewIRBuilder() *IRBuilder { return ir.NewBuilder() }

// Proneness profiling and guided selective protection (SDCTune-style).
type (
	// SiteStats aggregates per-instruction fault outcomes.
	SiteStats = fi.SiteStats
	// SiteLoc is a static instruction location (function, index).
	SiteLoc = machine.SiteLoc
	// MemWriter installs benchmark data into a machine or interpreter.
	MemWriter = fi.MemWriter
)

// ProfileProneness attributes a raw-binary campaign's faults to static
// instructions, sorted by descending SDC-proneness.
func ProfileProneness(prog *Program, memSize int, args []uint64,
	setup func(MemWriter) error, c Campaign) ([]SiteStats, error) {
	return fi.ProfileProneness(fi.AsmTarget{
		Prog: prog, MemSize: memSize, Args: args, Setup: setup,
	}, c)
}

// GuidedSelector spends a protection budget on the instructions with the
// highest observed SDC mass.
var GuidedSelector = harness.GuidedSelector
